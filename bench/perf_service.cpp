/**
 * @file
 * Load generator for the thermal simulation service: N concurrent
 * clients fire steady-state queries at a daemon (an in-process server
 * by default, or an external xylem_serve via --socket) with a
 * configurable duplicate-scenario fraction, then report throughput,
 * client-side latency percentiles (p50/p95/p99), dedup hits, and
 * admission-control drops, and verify that a served response is
 * bit-identical to the same query run directly in batch mode.
 *
 * The duplicate mix is deterministic and shared across clients: the
 * same request index maps to the same scenario in every client, so
 * concurrent duplicates actually collide in the daemon's in-flight
 * map and exercise the micro-batching path.
 *
 * Resilience: clients reconnect with capped exponential backoff
 * (deterministic jitter) on transport failures and retry overloaded
 * responses a bounded number of times; retry/reconnect counts are
 * reported. --deadline-ms attaches an end-to-end budget to every
 * request, and the latency percentiles are split by outcome (ok /
 * overloaded / deadline-exceeded / error) so a shed request's fast
 * typed answer cannot masquerade as solve throughput.
 *
 * Flags:
 *   --socket PATH      use an external daemon instead of in-process
 *   --clients N        concurrent client connections (default 8)
 *   --requests N       requests per client (default 24)
 *   --deadline-ms MS   per-request end-to-end deadline (default none)
 *   --dup-percent P    share of duplicate-scenario requests (default 50)
 *   --jobs N           in-process server worker threads (default 4)
 *   --solver-threads N in-process daemon's intra-solve thread grant
 *                      (default 0 = off): the load-adaptive policy
 *                      threads solves when the queue is shallow and
 *                      pins them to 1 thread when it is deep; the
 *                      decision counters land in the JSON
 *   --queue-capacity N in-process server queue bound (default 64)
 *   --verify N         scenarios to check bit-identical vs batch mode
 *                      (default 3; 0 disables)
 *   --batch            also run the engine-level block-solve sweep:
 *                      batches of 1..32 distinct steady requests on a
 *                      64x64 stack through Engine::runBatch, reporting
 *                      solves/s and speedup over batch-1, with every
 *                      column verified bit-identical to Engine::run
 *                      (emitted as "batch_sweep" in the JSON)
 *   --json [PATH]      summary JSON (default BENCH_service.json)
 *   --fast             smoke configuration (4 clients x 6 requests)
 *
 * Exit status: 0 on success; 1 when any transport error occurs, a
 * response is not bit-identical to batch mode, a sweep column diverges
 * from its solo solve, no dedup hit was observed despite duplicate
 * traffic, or requests were shed although the offered load fits the
 * queue bound.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.hpp"
#include "service/engine.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/socket.hpp"
#include "workloads/profile.hpp"
#include "xylem/config_io.hpp"
#include "xylem/system.hpp"

namespace {

using namespace xylem;
using Clock = std::chrono::steady_clock;

/** The benchmark stack: small grid so a steady solve is fast. */
constexpr const char *kGridNx = "32";
constexpr const char *kGridNy = "32";

const std::vector<std::string> kApps = {"FFT", "LU", "Radix",
                                        "Cholesky"};

struct Scenario
{
    std::string app;
    double freqGHz = 0.0;
};

/** Same request index -> same scenario in every client (collides). */
Scenario
sharedScenario(int r)
{
    Scenario s;
    s.app = kApps[static_cast<std::size_t>(r) % kApps.size()];
    s.freqGHz = 2.0 + 0.1 * (r % 5);
    return s;
}

/** Client-unique scenario: never collides across clients. */
Scenario
uniqueScenario(int client, int r)
{
    Scenario s;
    s.app = kApps[static_cast<std::size_t>(client + r) % kApps.size()];
    s.freqGHz = 1.0 + 0.001 * (client * 1000 + r);
    return s;
}

/** Deterministic duplicate mix, identical across clients. */
bool
isShared(int r, int dup_percent)
{
    return (r * 37) % 100 < dup_percent;
}

std::string
requestFrame(std::uint64_t id, const Scenario &s,
             const char *nx = kGridNx, const char *ny = kGridNy,
             const char *precond = nullptr, double deadline_ms = 0.0)
{
    service::JsonValue::Object config;
    config.emplace("gridNx", service::JsonValue(nx));
    config.emplace("gridNy", service::JsonValue(ny));
    if (precond)
        config.emplace("precond", service::JsonValue(precond));
    service::JsonValue::Object req;
    req.emplace("id", service::JsonValue(static_cast<double>(id)));
    req.emplace("query", service::JsonValue("steady"));
    req.emplace("app", service::JsonValue(s.app));
    req.emplace("freqGHz", service::JsonValue(s.freqGHz));
    if (deadline_ms > 0.0)
        req.emplace("deadline_ms", service::JsonValue(deadline_ms));
    req.emplace("config", service::JsonValue(std::move(config)));
    std::string frame = service::JsonValue(std::move(req)).dump();
    frame += '\n';
    return frame;
}

/** Capped exponential backoff with deterministic hash jitter. */
std::chrono::milliseconds
backoffDelay(int client, int attempt)
{
    double ms = 20.0;
    for (int i = 1; i < attempt && ms < 500.0; ++i)
        ms *= 2.0;
    if (ms > 500.0)
        ms = 500.0;
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = (h ^ static_cast<std::uint64_t>(client)) * 0x100000001b3ull;
    h = (h ^ static_cast<std::uint64_t>(attempt)) * 0x100000001b3ull;
    h ^= h >> 33;
    const double jitter =
        0.75 + 0.5 * static_cast<double>(h % 1024) / 1024.0;
    return std::chrono::milliseconds(
        static_cast<long>(ms * jitter + 0.5));
}

enum class Outcome
{
    Ok,
    Overloaded,
    DeadlineExceeded,
    Error
};

struct ClientStats
{
    /** Latencies split by final outcome (seconds, unsorted). */
    std::vector<double> byOutcome[4];
    int ok = 0;
    int overloaded = 0;
    int deadline_exceeded = 0;
    int errors = 0;
    int transport_failures = 0;
    int retries = 0;    ///< re-sent requests (overload/transport)
    int reconnects = 0; ///< connections re-established mid-run
};

constexpr int kMaxAttempts = 3;

/** One client: a connection firing requests back-to-back, with
 *  reconnect + bounded retry on transport failure and overload. */
ClientStats
runClient(const std::string &socket_path, int client, int requests,
          int dup_percent, double deadline_ms)
{
    ClientStats stats;
    service::FdGuard fd;
    std::unique_ptr<service::LineReader> reader;
    const auto connect = [&]() -> bool {
        try {
            fd = service::connectUnix(socket_path);
            reader = std::make_unique<service::LineReader>(
                fd.get(), service::kMaxFrameBytes);
            return true;
        } catch (const Error &) {
            return false;
        }
    };
    if (!connect()) {
        std::cerr << "client " << client << ": cannot connect\n";
        ++stats.transport_failures;
        return stats;
    }
    for (int r = 0; r < requests; ++r) {
        const Scenario s = isShared(r, dup_percent)
                               ? sharedScenario(r)
                               : uniqueScenario(client, r);
        const std::uint64_t id =
            static_cast<std::uint64_t>(client) * 100000 +
            static_cast<std::uint64_t>(r);
        const std::string frame = requestFrame(
            id, s, kGridNx, kGridNy, nullptr, deadline_ms);
        const auto t0 = Clock::now();
        bool answered = false;
        for (int attempt = 1; attempt <= kMaxAttempts && !answered;
             ++attempt) {
            if (attempt > 1) {
                ++stats.retries;
                std::this_thread::sleep_for(
                    backoffDelay(client, attempt));
            }
            std::string line;
            if (!service::sendAll(fd.get(), frame) ||
                reader->next(line) != service::ReadStatus::Frame) {
                // Transport failure: reconnect (the daemon may have
                // restarted) and let the attempt loop resend.
                if (connect())
                    ++stats.reconnects;
                continue;
            }
            const double latency =
                std::chrono::duration<double>(Clock::now() - t0)
                    .count();
            const service::JsonValue resp = service::parseJson(line);
            const service::JsonValue *ok = resp.find("ok");
            Outcome outcome = Outcome::Error;
            if (ok && ok->isBoolean() && ok->boolean()) {
                outcome = Outcome::Ok;
            } else {
                const service::JsonValue *error = resp.find("error");
                const service::JsonValue *code =
                    error ? error->find("code") : nullptr;
                const std::string token =
                    code && code->isString() ? code->str() : "";
                if (token == "overloaded")
                    outcome = Outcome::Overloaded;
                else if (token == "deadline-exceeded")
                    outcome = Outcome::DeadlineExceeded;
            }
            if (outcome == Outcome::Overloaded &&
                attempt < kMaxAttempts)
                continue; // shed: back off and resend
            answered = true;
            stats.byOutcome[static_cast<int>(outcome)].push_back(
                latency);
            switch (outcome) {
            case Outcome::Ok:
                ++stats.ok;
                break;
            case Outcome::Overloaded:
                ++stats.overloaded;
                break;
            case Outcome::DeadlineExceeded:
                ++stats.deadline_exceeded;
                break;
            case Outcome::Error:
                ++stats.errors;
                break;
            }
        }
        if (!answered)
            ++stats.transport_failures;
    }
    return stats;
}

double
quantile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
}

/** Fetch a counter from the daemon's metrics query (over the wire). */
std::uint64_t
wireCounter(const service::JsonValue &metrics, const std::string &name)
{
    const service::JsonValue *counters = metrics.find("counters");
    const service::JsonValue *v = counters ? counters->find(name)
                                           : nullptr;
    return v && v->isNumber()
               ? static_cast<std::uint64_t>(v->number())
               : 0;
}

/**
 * Ask the daemon for `scenario` once more and compare every double in
 * the response bit-for-bit with a cold batch-mode solve of the same
 * query. Returns false (and explains) on any mismatch.
 */
bool
verifyBitIdentical(const std::string &socket_path,
                   const Scenario &scenario)
{
    const service::FdGuard fd = service::connectUnix(socket_path);
    if (!service::sendAll(fd.get(), requestFrame(1, scenario)))
        return false;
    service::LineReader reader(fd.get(), service::kMaxFrameBytes);
    std::string line;
    if (reader.next(line) != service::ReadStatus::Frame)
        return false;
    const service::JsonValue resp = service::parseJson(line);
    const service::JsonValue *ok = resp.find("ok");
    if (!ok || !ok->isBoolean() || !ok->boolean())
        return false;

    // The same query, cold, through the batch-mode pipeline.
    std::istringstream config_text(std::string("gridNx = ") + kGridNx +
                                   "\ngridNy = " + kGridNy + "\n");
    core::StackSystem system(core::parseSystemConfig(config_text));
    const core::EvalResult eval = system.evaluate(
        workloads::profileByName(scenario.app), scenario.freqGHz);

    const auto bitEqual = [](double a, double b) {
        return std::memcmp(&a, &b, sizeof a) == 0;
    };
    const auto field = [&](const char *name) {
        const service::JsonValue *v = resp.find(name);
        return v && v->isNumber() ? v->number() : -1.0;
    };
    struct Check
    {
        const char *name;
        double served;
        double batch;
    };
    const Check checks[] = {
        {"procHotspotC", field("procHotspotC"), eval.procHotspot},
        {"dramBottomHotspotC", field("dramBottomHotspotC"),
         eval.dramBottomHotspot},
        {"procPowerW", field("procPowerW"), eval.procPowerTotal},
        {"dramPowerW", field("dramPowerW"), eval.dramPowerTotal},
        {"simSeconds", field("simSeconds"), eval.seconds},
    };
    for (const Check &c : checks) {
        if (!bitEqual(c.served, c.batch)) {
            std::cerr << "bit-identity violation: " << c.name
                      << " served " << service::formatDouble(c.served)
                      << " != batch "
                      << service::formatDouble(c.batch) << " (app "
                      << scenario.app << ", freq " << scenario.freqGHz
                      << ")\n";
            return false;
        }
    }
    const service::JsonValue *cores = resp.find("coreHotspotC");
    if (!cores || !cores->isArray() ||
        cores->array().size() != eval.coreHotspot.size())
        return false;
    for (std::size_t i = 0; i < eval.coreHotspot.size(); ++i)
        if (!bitEqual(cores->array()[i].number(),
                      eval.coreHotspot[i])) {
            std::cerr << "bit-identity violation: coreHotspotC[" << i
                      << "]\n";
            return false;
        }
    return true;
}

/** One batch size of the engine-level block-solve sweep. */
struct SweepPoint
{
    int batch = 0;
    double nsPerSolve = 0.0;
    double solvesPerS = 0.0;
    double speedupVs1 = 0.0;
    bool bitIdentical = true;
};

struct SweepResult
{
    /** Per-request cost of serial serving (Engine::run), reference. */
    double soloNsPerSolve = 0.0;
    std::vector<SweepPoint> points;
    bool bitIdentical = true;
};

/** Every scalar and every core temperature, bit for bit. */
bool
summariesBitIdentical(const service::EvalSummary &a,
                      const service::EvalSummary &b)
{
    const auto bitEqual = [](double x, double y) {
        return std::memcmp(&x, &y, sizeof x) == 0;
    };
    if (!bitEqual(a.procHotspotC, b.procHotspotC) ||
        !bitEqual(a.dramBottomHotspotC, b.dramBottomHotspotC) ||
        !bitEqual(a.procPowerW, b.procPowerW) ||
        !bitEqual(a.dramPowerW, b.dramPowerW) ||
        !bitEqual(a.simSeconds, b.simSeconds))
        return false;
    if (a.cgIterations != b.cgIterations || a.converged != b.converged ||
        a.escalation != b.escalation)
        return false;
    if (a.coreHotspotC.size() != b.coreHotspotC.size())
        return false;
    for (std::size_t i = 0; i < a.coreHotspotC.size(); ++i)
        if (!bitEqual(a.coreHotspotC[i], b.coreHotspotC[i]))
            return false;
    return true;
}

/**
 * The block-solve throughput sweep the batching server is built on:
 * batches of K distinct steady requests (one 64x64 stack, distinct
 * app/frequency per column) through Engine::runBatch, against a solo
 * Engine::run reference pass that both warms the model/simulation
 * caches and supplies the bit-identity baseline. speedup_vs_1 compares
 * each batch size against the same block-solve path at K=1, isolating
 * what amortising the coefficient and factorisation streams buys.
 *
 * The stack uses the line preconditioner: that is the iteration-heavy
 * solver the blocked kernels target (hundreds of CG iterations whose
 * cost is streaming stencil coefficients and cached Thomas factors,
 * both shared across columns). MG-CG converges in a handful of
 * iterations dominated by per-column V-cycle traffic, so its
 * amortisation ceiling is structurally lower (~2x).
 */
SweepResult
runBatchSweep(const std::vector<int> &sizes)
{
    const int max_k = *std::max_element(sizes.begin(), sizes.end());
    service::Engine engine{service::EngineOptions{}};

    std::vector<service::Request> reqs;
    reqs.reserve(static_cast<std::size_t>(max_k));
    for (int k = 0; k < max_k; ++k) {
        Scenario s;
        s.app = kApps[static_cast<std::size_t>(k) % kApps.size()];
        s.freqGHz = 2.0 + 0.05 * k;
        reqs.push_back(service::parseRequest(requestFrame(
            500000 + static_cast<std::uint64_t>(k), s, "64", "64",
            "line")));
    }

    SweepResult result;
    std::vector<service::EvalSummary> solo;
    solo.reserve(reqs.size());
    {
        const auto t0 = Clock::now();
        for (const service::Request &req : reqs)
            solo.push_back(engine.run(req));
        const double sec =
            std::chrono::duration<double>(Clock::now() - t0).count();
        result.soloNsPerSolve = sec / static_cast<double>(max_k) * 1e9;
    }

    for (const int batch : sizes) {
        std::vector<const service::Request *> ptrs;
        ptrs.reserve(static_cast<std::size_t>(batch));
        for (int k = 0; k < batch; ++k)
            ptrs.push_back(&reqs[static_cast<std::size_t>(k)]);
        const auto t0 = Clock::now();
        const auto outcomes = engine.runBatch(ptrs);
        const double sec =
            std::chrono::duration<double>(Clock::now() - t0).count();

        SweepPoint p;
        p.batch = batch;
        p.nsPerSolve = sec / static_cast<double>(batch) * 1e9;
        p.solvesPerS = sec > 0.0 ? static_cast<double>(batch) / sec : 0.0;
        for (int k = 0; k < batch; ++k) {
            const auto &out = outcomes[static_cast<std::size_t>(k)];
            if (!out.ok ||
                !summariesBitIdentical(
                    out.summary, solo[static_cast<std::size_t>(k)])) {
                std::cerr << "batch sweep: column " << k << " of batch "
                          << batch
                          << (out.ok ? " diverges from its solo solve"
                                     : " failed: " + out.message);
                if (out.ok)
                    std::cerr << " (batch "
                              << service::formatDouble(
                                     out.summary.procHotspotC)
                              << " in " << out.summary.cgIterations
                              << " iters vs solo "
                              << service::formatDouble(
                                     solo[static_cast<std::size_t>(k)]
                                         .procHotspotC)
                              << " in "
                              << solo[static_cast<std::size_t>(k)]
                                     .cgIterations
                              << " iters)";
                std::cerr << "\n";
                p.bitIdentical = false;
                result.bitIdentical = false;
            }
        }
        result.points.push_back(p);
    }
    for (SweepPoint &p : result.points)
        p.speedupVs1 = p.nsPerSolve > 0.0
                           ? result.points.front().nsPerSolve / p.nsPerSolve
                           : 0.0;
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(
        argc, argv,
        "  --socket PATH      external daemon (default: in-process)\n"
        "  --clients N        concurrent clients (default 8)\n"
        "  --requests N       requests per client (default 24)\n"
        "  --deadline-ms MS   per-request deadline (default none)\n"
        "  --dup-percent P    duplicate-scenario share (default 50)\n"
        "  --jobs N           in-process server workers (default 4)\n"
        "  --solver-threads N in-process intra-solve thread grant "
        "(default 0 = off)\n"
        "  --queue-capacity N in-process queue bound (default 64)\n"
        "  --verify N         bit-identity scenarios (default 3)\n"
        "  --batch            engine-level block-solve sweep "
        "(batch 1..32 on 64x64)\n"
        "  --json [PATH]      summary JSON "
        "(default BENCH_service.json)\n"
        "  --fast             smoke configuration\n");
    int clients = 8;
    int requests = 24;
    if (args.flag("--fast")) {
        clients = 4;
        requests = 6;
    }
    std::string external_socket;
    if (const auto path = args.option("--socket"))
        external_socket = *path;
    clients = args.intOption("--clients", clients);
    requests = args.intOption("--requests", requests);
    const double deadline_ms = args.numberOption("--deadline-ms", 0.0);
    const int dup_percent = args.intOption("--dup-percent", 50);
    const int jobs = args.intOption("--jobs", 4);
    const int solver_threads = args.intOption("--solver-threads", 0);
    const int queue_capacity = args.intOption("--queue-capacity", 64);
    const int verify_n = args.intOption("--verify", 3);
    const bool want_batch_sweep = args.flag("--batch");
    std::string json_path;
    const bool want_json =
        args.optionOrDefault("--json", json_path, "BENCH_service.json");
    args.finish();

    bench::banner("perf_service",
                  "n/a (serving-layer microbenchmark, not a paper "
                  "figure)");

    // In-process daemon unless an external one was named.
    std::string socket_path = external_socket;
    std::unique_ptr<service::Server> server;
    std::thread server_thread;
    if (socket_path.empty()) {
        socket_path = "/tmp/xylem_perf_" + std::to_string(::getpid()) +
                      ".sock";
        service::ServerOptions opts;
        opts.socketPath = socket_path;
        opts.workers = jobs;
        opts.engine.solverThreads = solver_threads;
        opts.queueCapacity = static_cast<std::size_t>(queue_capacity);
        server = std::make_unique<service::Server>(opts);
        server->start();
        server_thread = std::thread([&server] { server->run(); });
    }

    std::cout << clients << " clients x " << requests << " requests, "
              << dup_percent << "% duplicate scenarios, socket "
              << socket_path << "\n";

    const auto t0 = Clock::now();
    std::vector<ClientStats> stats(
        static_cast<std::size_t>(clients));
    {
        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(clients));
        for (int c = 0; c < clients; ++c)
            threads.emplace_back([&, c] {
                stats[static_cast<std::size_t>(c)] = runClient(
                    socket_path, c, requests, dup_percent,
                    deadline_ms);
            });
        for (auto &t : threads)
            t.join();
    }
    const double wall =
        std::chrono::duration<double>(Clock::now() - t0).count();

    ClientStats total;
    for (const auto &s : stats) {
        for (int o = 0; o < 4; ++o)
            total.byOutcome[o].insert(total.byOutcome[o].end(),
                                      s.byOutcome[o].begin(),
                                      s.byOutcome[o].end());
        total.ok += s.ok;
        total.overloaded += s.overloaded;
        total.deadline_exceeded += s.deadline_exceeded;
        total.errors += s.errors;
        total.transport_failures += s.transport_failures;
        total.retries += s.retries;
        total.reconnects += s.reconnects;
    }
    std::vector<double> all_latencies;
    for (int o = 0; o < 4; ++o) {
        all_latencies.insert(all_latencies.end(),
                             total.byOutcome[o].begin(),
                             total.byOutcome[o].end());
        std::sort(total.byOutcome[o].begin(), total.byOutcome[o].end());
    }
    std::sort(all_latencies.begin(), all_latencies.end());
    const double p50 = quantile(all_latencies, 0.50);
    const double p95 = quantile(all_latencies, 0.95);
    const double p99 = quantile(all_latencies, 0.99);
    const double throughput =
        wall > 0.0 ? static_cast<double>(total.ok) / wall : 0.0;

    // Server-side telemetry over the wire (works for external daemons
    // too), incl. the dedup counter the acceptance criteria name.
    std::uint64_t dedup_hits = 0;
    std::uint64_t shed = 0;
    std::uint64_t threaded_solves = 0;
    std::uint64_t singlethread_solves = 0;
    std::string metrics_json = "{}";
    try {
        const service::FdGuard fd = service::connectUnix(socket_path);
        service::sendAll(fd.get(), "{\"query\":\"metrics\"}\n");
        service::LineReader reader(fd.get(), service::kMaxFrameBytes);
        std::string line;
        if (reader.next(line) == service::ReadStatus::Frame) {
            const service::JsonValue resp = service::parseJson(line);
            if (const service::JsonValue *m = resp.find("metrics")) {
                dedup_hits = wireCounter(*m, "service.dedup_hits");
                shed = wireCounter(*m, "service.shed");
                threaded_solves =
                    wireCounter(*m, "service.threaded_solves");
                singlethread_solves =
                    wireCounter(*m, "service.singlethread_solves");
                metrics_json = m->dump();
            }
        }
    } catch (const Error &e) {
        std::cerr << "metrics query failed: " << e.what() << "\n";
    }

    bool bit_identical = true;
    for (int i = 0; i < verify_n; ++i)
        bit_identical =
            verifyBitIdentical(socket_path, sharedScenario(i)) &&
            bit_identical;

    if (server) {
        server->requestStop();
        server_thread.join();
    }

    SweepResult sweep;
    if (want_batch_sweep) {
        std::cout << "\nblock-solve sweep (64x64 stack, distinct "
                     "scenarios per column):\n";
        try {
            sweep = runBatchSweep({1, 2, 4, 8, 16, 32});
        } catch (const Error &e) {
            std::cerr << "batch sweep failed: " << e.what() << "\n";
            return 1;
        }
        std::cout << "  solo (Engine::run): "
                  << Table::num(sweep.soloNsPerSolve / 1e6, 1)
                  << " ms/solve\n";
        for (const SweepPoint &p : sweep.points)
            std::cout << "  batch " << p.batch << ": "
                      << Table::num(p.nsPerSolve / 1e6, 1)
                      << " ms/solve, " << Table::num(p.solvesPerS, 2)
                      << " solves/s, " << Table::num(p.speedupVs1, 2)
                      << "x vs batch-1, bit-identical "
                      << (p.bitIdentical ? "yes" : "NO") << "\n";
    }

    std::cout << "\nresponses: " << total.ok << " ok, "
              << total.overloaded << " overloaded, "
              << total.deadline_exceeded << " deadline-exceeded, "
              << total.errors << " errors, "
              << total.transport_failures << " transport failures ("
              << total.retries << " retries, " << total.reconnects
              << " reconnects)\n";
    std::cout << "throughput: " << Table::num(throughput, 1)
              << " req/s over " << Table::num(wall, 2) << " s\n";
    std::cout << "latency: p50 " << Table::num(p50 * 1e3, 2)
              << " ms, p95 " << Table::num(p95 * 1e3, 2)
              << " ms, p99 " << Table::num(p99 * 1e3, 2) << " ms\n";
    static const char *const kOutcomeNames[] = {
        "ok", "overloaded", "deadline_exceeded", "error"};
    for (int o = 0; o < 4; ++o)
        if (!total.byOutcome[o].empty())
            std::cout << "  " << kOutcomeNames[o] << ": p50 "
                      << Table::num(
                             quantile(total.byOutcome[o], 0.50) * 1e3,
                             2)
                      << " ms, p95 "
                      << Table::num(
                             quantile(total.byOutcome[o], 0.95) * 1e3,
                             2)
                      << " ms, p99 "
                      << Table::num(
                             quantile(total.byOutcome[o], 0.99) * 1e3,
                             2)
                      << " ms (" << total.byOutcome[o].size() << ")\n";
    std::cout << "dedup hits: " << dedup_hits << ", shed: " << shed
              << ", bit-identical vs batch: "
              << (verify_n > 0 ? (bit_identical ? "yes" : "NO")
                               : "skipped")
              << "\n";
    if (solver_threads > 0)
        std::cout << "adaptive threads (grant " << solver_threads
                  << "): " << threaded_solves << " threaded pickups, "
                  << singlethread_solves << " pinned to 1\n";

    if (want_json) {
        std::ostringstream json;
        json << "{\"bench\":\"perf_service\",\"clients\":" << clients
             << ",\"requests_per_client\":" << requests
             << ",\"dup_percent\":" << dup_percent
             << ",\"deadline_ms\":"
             << service::formatDouble(deadline_ms)
             << ",\"wall_seconds\":" << wall
             << ",\"responses_ok\":" << total.ok
             << ",\"overloaded\":" << total.overloaded
             << ",\"deadline_exceeded\":" << total.deadline_exceeded
             << ",\"errors\":" << total.errors
             << ",\"transport_failures\":" << total.transport_failures
             << ",\"retries\":" << total.retries
             << ",\"reconnects\":" << total.reconnects
             << ",\"throughput_rps\":" << throughput
             << ",\"p50_s\":" << service::formatDouble(p50)
             << ",\"p95_s\":" << service::formatDouble(p95)
             << ",\"p99_s\":" << service::formatDouble(p99);
        json << ",\"latency_by_outcome\":{";
        for (int o = 0; o < 4; ++o) {
            json << (o ? "," : "") << "\"" << kOutcomeNames[o]
                 << "\":{\"count\":" << total.byOutcome[o].size()
                 << ",\"p50_s\":"
                 << service::formatDouble(
                        quantile(total.byOutcome[o], 0.50))
                 << ",\"p95_s\":"
                 << service::formatDouble(
                        quantile(total.byOutcome[o], 0.95))
                 << ",\"p99_s\":"
                 << service::formatDouble(
                        quantile(total.byOutcome[o], 0.99))
                 << "}";
        }
        json << "}";
        json << ",\"dedup_hits\":" << dedup_hits
             << ",\"shed\":" << shed
             << ",\"solver_threads\":" << solver_threads
             << ",\"threaded_solves\":" << threaded_solves
             << ",\"singlethread_solves\":" << singlethread_solves
             << ",\"bit_identical\":"
             << (bit_identical ? "true" : "false");
        if (want_batch_sweep) {
            json << ",\"batch_sweep\":{\"gridNx\":64,\"gridNy\":64"
                 << ",\"precond\":\"line\""
                 << ",\"solo_ns_per_solve\":"
                 << service::formatDouble(sweep.soloNsPerSolve)
                 << ",\"bit_identical\":"
                 << (sweep.bitIdentical ? "true" : "false")
                 << ",\"points\":[";
            for (std::size_t i = 0; i < sweep.points.size(); ++i) {
                const SweepPoint &p = sweep.points[i];
                json << (i ? "," : "") << "{\"batch\":" << p.batch
                     << ",\"ns_per_solve\":"
                     << service::formatDouble(p.nsPerSolve)
                     << ",\"solves_per_s\":"
                     << service::formatDouble(p.solvesPerS)
                     << ",\"speedup_vs_1\":"
                     << service::formatDouble(p.speedupVs1)
                     << ",\"bit_identical\":"
                     << (p.bitIdentical ? "true" : "false") << "}";
            }
            json << "]}";
        }
        json << ",\"metrics\":" << metrics_json << "}";
        std::ofstream out(json_path, std::ios::trunc);
        if (out) {
            out << json.str() << "\n";
            std::cout << "JSON written to " << json_path << "\n";
        } else {
            std::cerr << "warn: cannot write JSON summary to '"
                      << json_path << "'\n";
            return 1;
        }
    }

    // Acceptance gates: every request answered; no shedding when the
    // offered load fits the queue; duplicates actually deduped;
    // served results bit-identical to batch mode.
    if (total.transport_failures > 0 || total.errors > 0)
        return 1;
    if (!bit_identical)
        return 1;
    if (want_batch_sweep && !sweep.bitIdentical)
        return 1;
    if (clients <= queue_capacity && total.overloaded > 0) {
        std::cerr << "unexpected shedding: " << total.overloaded
                  << " requests below the queue bound\n";
        return 1;
    }
    if (clients > 1 && requests > 1 && dup_percent >= 50 &&
        dedup_hits == 0) {
        std::cerr << "no dedup hits despite duplicate traffic\n";
        return 1;
    }
    return 0;
}
