/**
 * @file
 * Fig. 18: sensitivity to die thickness (§7.7.1). Thinning every die
 * in the stack inhibits lateral heat spreading and raises the
 * processor temperature (averaged over all applications, 2.4 GHz).
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int
main(int argc, char **argv)
{
    using namespace xylem;
    using stack::Scheme;

    bench::banner(
        "Fig. 18 — effect of die thickness (avg over apps, 2.4 GHz)",
        "thinner dies are hotter (50 > 100 > 200 µm) for every scheme; "
        "a trade-off against TSV interconnect density");

    const core::ExperimentConfig cfg = bench::configFromArgs(argc, argv);
    const std::vector<Scheme> schemes = {Scheme::Base, Scheme::Bank,
                                         Scheme::BankE};
    const auto entries =
        core::runThicknessSweep(cfg, {50.0, 100.0, 200.0}, schemes);

    Table t({"die thickness (um)", "base (C)", "bank (C)", "banke (C)"});
    for (double th : {50.0, 100.0, 200.0}) {
        std::vector<std::string> row = {Table::num(th, 0)};
        for (Scheme s : schemes) {
            for (const auto &e : entries) {
                if (e.parameter == th && e.scheme == s)
                    row.push_back(Table::num(e.avgProcHotspotC, 2));
            }
        }
        t.addRow(row);
    }
    t.print(std::cout);
    return 0;
}
