/**
 * @file
 * Ablation (§2.5 quantified): why prior work concluded that TTSVs
 * alone are effective. Sweep the background D2D conductivity from the
 * measured 1.5 W/mK up to the 100 W/mK assumed by earlier studies,
 * and compare `prior` (TTSVs, no shorting) against `bank`
 * (aligned + shorted) at each point.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "workloads/profile.hpp"
#include "xylem/system.hpp"

int
main(int argc, char **argv)
{
    xylem::bench::simpleArgs(argc, argv);
    using namespace xylem;
    using stack::Scheme;

    bench::banner(
        "Ablation — D2D conductivity assumption of prior work",
        "with the measured lambda=1.5 W/mK, TTSVs alone (prior) do "
        "nothing and shorting is required; with the lambda=100 "
        "assumed by earlier studies ([36], up to 65x too high), the "
        "D2D layer is no bottleneck, so TTSV placement alone appears "
        "effective — exactly the error the paper identifies");

    const auto &app = workloads::profileByName("LU(NAS)");
    Table t({"D2D lambda (W/mK)", "base (C)", "prior dT (C)",
             "bank dT (C)", "D2D bottleneck?"});
    for (double lambda : {0.5, 1.5, 10.0, 100.0}) {
        double temps[3];
        int i = 0;
        for (Scheme s : {Scheme::Base, Scheme::Prior, Scheme::Bank}) {
            core::SystemConfig cfg;
            cfg.stackSpec.scheme = s;
            cfg.stackSpec.d2dLambdaOverride = lambda;
            core::StackSystem system(cfg);
            temps[i++] = system.evaluate(app, 2.4).procHotspot;
        }
        const double d_prior = temps[0] - temps[1];
        const double d_bank = temps[0] - temps[2];
        t.addRow({Table::num(lambda, 1), Table::num(temps[0], 1),
                  Table::num(d_prior, 2), Table::num(d_bank, 2),
                  d_prior < 0.3 * d_bank ? "yes (shorting needed)"
                                         : "no (TTSVs suffice)"});
    }
    t.print(std::cout);
    std::cout << "\nAt the measured 1.5 W/mK the base stack is much "
                 "hotter and only shorting helps; at 100 W/mK the "
                 "whole effect collapses into the silicon, where bare "
                 "TTSVs already live.\n";
    return 0;
}
