/**
 * @file
 * Tests for the workload suite and the synthetic stream generator,
 * including parameterized property checks over all 17 applications.
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "workloads/profile.hpp"
#include "workloads/stream.hpp"

namespace xylem::workloads {
namespace {

TEST(Suite, HasAll17Applications)
{
    EXPECT_EQ(suite().size(), 17u);
}

TEST(Suite, NamesAreUniqueAndNonEmpty)
{
    std::set<std::string> names;
    for (const auto &p : suite()) {
        EXPECT_FALSE(p.name.empty());
        EXPECT_TRUE(names.insert(p.name).second) << p.name;
    }
}

TEST(Suite, CoversTheThreeBenchmarkSuites)
{
    std::map<std::string, int> by_suite;
    for (const auto &p : suite())
        ++by_suite[p.suite];
    EXPECT_EQ(by_suite["SPLASH-2"], 8);
    EXPECT_EQ(by_suite["PARSEC"], 2);
    EXPECT_EQ(by_suite["NPB"], 7);
}

TEST(Suite, PaperCalloutsAreClassifiedCorrectly)
{
    // §7.2 / §7.6.1: LU(NAS) compute-intensive, FT and IS
    // memory-intensive; Cholesky/Barnes/Radiosity near Tj,max.
    EXPECT_EQ(profileByName("LU(NAS)").klass, WorkloadClass::Compute);
    EXPECT_EQ(profileByName("FT").klass, WorkloadClass::Memory);
    EXPECT_EQ(profileByName("IS").klass, WorkloadClass::Memory);
    EXPECT_EQ(profileByName("Cholesky").klass, WorkloadClass::Compute);
    EXPECT_EQ(profileByName("Barnes").klass, WorkloadClass::Compute);
    EXPECT_EQ(profileByName("Radiosity").klass, WorkloadClass::Compute);
}

TEST(Suite, UnknownNameThrows)
{
    EXPECT_THROW(profileByName("nonesuch"), FatalError);
}

TEST(Suite, ClassToString)
{
    EXPECT_STREQ(toString(WorkloadClass::Compute), "compute");
    EXPECT_STREQ(toString(WorkloadClass::Mixed), "mixed");
    EXPECT_STREQ(toString(WorkloadClass::Memory), "memory");
}

TEST(Profile, ValidateCatchesBadMix)
{
    Profile p = profileByName("FFT");
    p.fracLoad = 0.9; // mix no longer sums below 1
    EXPECT_THROW(p.validate(), PanicError);
    p = profileByName("FFT");
    p.probCold = 0.5; // locality probabilities no longer sum to 1
    EXPECT_THROW(p.validate(), PanicError);
    p = profileByName("FFT");
    p.mlp = 0.5;
    EXPECT_THROW(p.validate(), PanicError);
}

TEST(Profile, MemoryAppsAreColderThanComputeApps)
{
    // Every memory-class app must have more DRAM-bound accesses and a
    // lower issue efficiency than every compute-class app.
    for (const auto &m : suite()) {
        if (m.klass != WorkloadClass::Memory)
            continue;
        for (const auto &c : suite()) {
            if (c.klass != WorkloadClass::Compute)
                continue;
            EXPECT_GT(m.probCold, c.probCold) << m.name << " vs " << c.name;
            EXPECT_LT(m.issueEfficiency, c.issueEfficiency)
                << m.name << " vs " << c.name;
        }
    }
}

// ---------------------------------------------------------------------
// Stream generator: properties over every profile.
// ---------------------------------------------------------------------

class StreamPropertyTest : public ::testing::TestWithParam<Profile>
{
};

TEST_P(StreamPropertyTest, MixMatchesProfile)
{
    const Profile &p = GetParam();
    ThreadStream stream(p, 0, 42);
    const int n = 200000;
    int fpu = 0, branch = 0, load = 0, store = 0, imiss = 0;
    for (int i = 0; i < n; ++i) {
        const Op op = stream.next();
        fpu += op.kind == Op::Kind::Fpu;
        branch += op.kind == Op::Kind::Branch;
        load += op.kind == Op::Kind::Load;
        store += op.kind == Op::Kind::Store;
        imiss += op.instMiss;
    }
    EXPECT_NEAR(static_cast<double>(fpu) / n, p.fracFpu, 0.01);
    EXPECT_NEAR(static_cast<double>(branch) / n, p.fracBranch, 0.01);
    EXPECT_NEAR(static_cast<double>(load) / n, p.fracLoad, 0.01);
    EXPECT_NEAR(static_cast<double>(store) / n, p.fracStore, 0.01);
    EXPECT_NEAR(static_cast<double>(imiss) / n * 1000.0,
                p.l1iMissPerKilo, 1.0);
}

TEST_P(StreamPropertyTest, DeterministicPerSeedAndThread)
{
    const Profile &p = GetParam();
    ThreadStream a(p, 3, 42), b(p, 3, 42), c(p, 4, 42);
    bool saw_difference = false;
    for (int i = 0; i < 2000; ++i) {
        const Op oa = a.next(), ob = b.next(), oc = c.next();
        EXPECT_EQ(static_cast<int>(oa.kind), static_cast<int>(ob.kind));
        EXPECT_EQ(oa.addr, ob.addr);
        if (oa.addr != oc.addr || oa.kind != oc.kind)
            saw_difference = true;
    }
    EXPECT_TRUE(saw_difference);
}

TEST_P(StreamPropertyTest, AddressesStayInKnownRegions)
{
    const Profile &p = GetParam();
    ThreadStream stream(p, 1, 42);
    const std::uint64_t private_base = 2ull << 32;
    const std::uint64_t shared_base = 1ull << 40;
    for (int i = 0; i < 50000; ++i) {
        const Op op = stream.next();
        if (op.kind != Op::Kind::Load && op.kind != Op::Kind::Store)
            continue;
        const bool in_private =
            op.addr >= private_base &&
            op.addr < private_base + (256ull << 10) + p.workingSetBytes;
        const bool in_shared =
            op.addr >= shared_base &&
            op.addr < shared_base + (256ull << 10) + p.workingSetBytes;
        EXPECT_TRUE(in_private || in_shared) << std::hex << op.addr;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, StreamPropertyTest, ::testing::ValuesIn(suite()),
    [](const auto &info) {
        std::string name = info.param.name;
        for (char &ch : name)
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

TEST(Stream, HotRegionDominatesForComputeApps)
{
    const Profile &p = profileByName("LU(NAS)");
    ThreadStream stream(p, 0, 42);
    const std::uint64_t private_base = 1ull << 32;
    int hot = 0, mem_ops = 0;
    for (int i = 0; i < 100000; ++i) {
        const Op op = stream.next();
        if (op.kind != Op::Kind::Load && op.kind != Op::Kind::Store)
            continue;
        ++mem_ops;
        hot += op.addr < private_base + (16u << 10);
    }
    EXPECT_GT(static_cast<double>(hot) / mem_ops, 0.95);
}

TEST(Stream, StreamingProducesSequentialLines)
{
    Profile p = profileByName("FT");
    p.streamFraction = 1.0;
    p.probHot = 0.0;
    p.probWarm = 0.0;
    p.probCold = 1.0;
    p.sharedFraction = 0.0;
    ThreadStream stream(p, 0, 42);
    std::uint64_t prev = 0;
    int sequential = 0, mem_ops = 0;
    for (int i = 0; i < 20000; ++i) {
        const Op op = stream.next();
        if (op.kind != Op::Kind::Load && op.kind != Op::Kind::Store)
            continue;
        if (mem_ops > 0 && op.addr == prev + 64)
            ++sequential;
        prev = op.addr;
        ++mem_ops;
    }
    EXPECT_GT(static_cast<double>(sequential) / mem_ops, 0.95);
}

TEST(Stream, SharedRegionIsCommonAcrossThreads)
{
    Profile p = profileByName("Radiosity");
    p.sharedFraction = 1.0;
    p.probHot = 0.0;
    p.probWarm = 0.0;
    p.probCold = 1.0;
    p.streamFraction = 0.0;
    ThreadStream a(p, 0, 42), b(p, 5, 42);
    std::set<std::uint64_t> lines_a;
    for (int i = 0; i < 30000; ++i) {
        const Op op = a.next();
        if (op.kind == Op::Kind::Load || op.kind == Op::Kind::Store)
            lines_a.insert(op.addr / 64);
    }
    int overlap = 0, mem_ops = 0;
    for (int i = 0; i < 30000; ++i) {
        const Op op = b.next();
        if (op.kind != Op::Kind::Load && op.kind != Op::Kind::Store)
            continue;
        ++mem_ops;
        overlap += lines_a.count(op.addr / 64) > 0;
    }
    EXPECT_GT(static_cast<double>(overlap) / mem_ops, 0.1);
}

TEST(Stream, BranchMispredictsMatchRate)
{
    const Profile &p = profileByName("Radix");
    ThreadStream stream(p, 0, 42);
    int branches = 0, mispredicts = 0;
    for (int i = 0; i < 300000; ++i) {
        const Op op = stream.next();
        if (op.kind == Op::Kind::Branch) {
            ++branches;
            mispredicts += op.mispredict;
        }
    }
    EXPECT_NEAR(static_cast<double>(mispredicts) / branches,
                p.branchMispredictRate, 0.01);
}

} // namespace
} // namespace xylem::workloads
