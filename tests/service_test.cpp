/**
 * @file
 * Tests of the simulation service subsystem: the JSON layer (strict
 * parsing of hostile input, bit-exact double round-trips), the wire
 * protocol (request validation, scenario keys, response formatting),
 * and the live server (malformed frames answered with typed errors,
 * dedup of concurrent identical requests, bit-identity with batch
 * mode, admission-control shedding, graceful drain).
 *
 * Server tests run an in-process Server on a per-test abstract
 * socket path under /tmp and talk to it over real sockets, so the
 * reader/worker/drain machinery is exercised exactly as in
 * production (and under TSan in CI).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <pthread.h>
#include <signal.h>
#include <sys/ioctl.h>
#include <sys/socket.h>
#include <unistd.h>

#include "runtime/metrics.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/socket.hpp"
#include "workloads/profile.hpp"
#include "xylem/config_io.hpp"
#include "xylem/system.hpp"

namespace {

using namespace xylem;
using service::JsonValue;

// ---------------------------------------------------------------- JSON

TEST(JsonTest, ParsesScalarsAndContainers)
{
    EXPECT_TRUE(service::parseJson("null").isNull());
    EXPECT_TRUE(service::parseJson("true").boolean());
    EXPECT_DOUBLE_EQ(service::parseJson("-2.5e3").number(), -2500.0);
    EXPECT_EQ(service::parseJson("\"a\\nb\"").str(), "a\nb");
    EXPECT_EQ(service::parseJson("[1,2,3]").array().size(), 3u);
    const JsonValue obj = service::parseJson(
        " {\"a\": 1, \"b\": {\"c\": [true, null]}} ");
    ASSERT_NE(obj.find("b"), nullptr);
    EXPECT_EQ(obj.find("b")->find("c")->array().size(), 2u);
}

TEST(JsonTest, RejectsMalformedInput)
{
    const char *bad[] = {
        "",           "{",          "}",        "[1,",
        "{\"a\":}",   "{\"a\" 1}",  "nul",      "tru",
        "01",         "1.",         "1e",       "+1",
        "\"\\x\"",    "\"\\u12\"",  "\"unterminated",
        "[1] junk",   "{}{}",       "\"\x01\"", "{\"a\":1,}",
        "[1,,2]",     "--1",        "1ee5",     "\"\\ud800\"",
    };
    for (const char *text : bad)
        EXPECT_THROW(service::parseJson(text), Error)
            << "accepted: " << text;
}

TEST(JsonTest, ReportsProtocolErrorCode)
{
    try {
        service::parseJson("{broken");
        FAIL() << "no exception";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::Protocol);
    }
}

TEST(JsonTest, DepthBombIsRejectedNotStackOverflow)
{
    std::string deep(2000, '[');
    deep += std::string(2000, ']');
    EXPECT_THROW(service::parseJson(deep), Error);
}

TEST(JsonTest, SurrogatePairDecodesToUtf8)
{
    const JsonValue v = service::parseJson("\"\\ud83d\\ude00\"");
    EXPECT_EQ(v.str(), "\xf0\x9f\x98\x80"); // U+1F600
}

TEST(JsonTest, DoublesRoundTripBitExactly)
{
    const double values[] = {0.0,    -0.0,       1.0 / 3.0,
                             1e-300, 88.4834897, 0.1 + 0.2};
    for (const double v : values) {
        const std::string text = service::formatDouble(v);
        const double back = service::parseJson(text).number();
        EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0)
            << text << " round-tripped to a different bit pattern";
    }
}

TEST(JsonTest, DumpEscapesAndSortsKeys)
{
    JsonValue::Object obj;
    obj.emplace("b", JsonValue("x\"y\n"));
    obj.emplace("a", JsonValue(true));
    EXPECT_EQ(JsonValue(std::move(obj)).dump(),
              "{\"a\":true,\"b\":\"x\\\"y\\n\"}");
}

// ------------------------------------------------------------ protocol

TEST(ProtocolTest, ParsesFullRequest)
{
    const service::Request req = service::parseRequest(
        "{\"id\":7,\"query\":\"steady\",\"app\":\"FFT\","
        "\"freqGHz\":3.2,\"config\":{\"gridNx\":24,\"gridNy\":24}}");
    EXPECT_EQ(req.id, 7u);
    EXPECT_EQ(req.query, service::QueryType::Steady);
    EXPECT_EQ(req.app, "FFT");
    EXPECT_DOUBLE_EQ(req.freqGHz, 3.2);
    EXPECT_EQ(req.config.stackSpec.gridNx, 24u);
}

TEST(ProtocolTest, RejectsBadRequests)
{
    const char *bad[] = {
        "[1,2]",                                   // not an object
        "{\"query\":\"warp\",\"app\":\"FFT\"}",    // unknown query
        "{\"query\":\"steady\"}",                  // app missing
        "{\"query\":\"steady\",\"app\":7}",        // app wrong type
        "{\"query\":\"steady\",\"app\":\"FFT\",\"bogus\":1}",
        "{\"query\":\"steady\",\"app\":\"FFT\",\"freqGHz\":-1}",
        "{\"query\":\"steady\",\"app\":\"FFT\",\"id\":-3}",
        "{\"query\":\"steady\",\"app\":\"FFT\",\"id\":1.5}",
        "{\"query\":\"transient\",\"app\":\"FFT\",\"steps\":0}",
        "{\"query\":\"transient\",\"app\":\"FFT\",\"dtSeconds\":0}",
        "{\"query\":\"steady\",\"app\":\"FFT\","
        "\"config\":{\"noSuchKey\":1}}",
        "{\"query\":\"steady\",\"app\":\"FFT\",\"config\":3}",
    };
    for (const char *frame : bad) {
        try {
            service::parseRequest(frame);
            FAIL() << "accepted: " << frame;
        } catch (const Error &e) {
            EXPECT_EQ(e.code(), ErrorCode::Protocol) << frame;
        }
    }
}

TEST(ProtocolTest, ScenarioKeyIdentifiesTheSimulation)
{
    const auto parse = [](const std::string &frame) {
        return service::parseRequest(frame);
    };
    const auto a = parse(
        "{\"id\":1,\"query\":\"steady\",\"app\":\"FFT\",\"freqGHz\":3}");
    const auto b = parse(
        "{\"id\":2,\"query\":\"steady\",\"app\":\"FFT\",\"freqGHz\":3}");
    const auto c = parse(
        "{\"id\":1,\"query\":\"steady\",\"app\":\"LU\",\"freqGHz\":3}");
    const auto d = parse(
        "{\"id\":1,\"query\":\"boost\",\"app\":\"FFT\",\"freqGHz\":3}");
    // Same simulation, different correlation ids: identical keys.
    EXPECT_EQ(service::scenarioKey(a), service::scenarioKey(b));
    EXPECT_NE(service::scenarioKey(a), service::scenarioKey(c));
    EXPECT_NE(service::scenarioKey(a), service::scenarioKey(d));
}

TEST(ProtocolTest, ErrorResponseCarriesTypedCode)
{
    const std::string resp = service::formatErrorResponse(
        9, ErrorCode::Overloaded, "queue full");
    const JsonValue v = service::parseJson(resp);
    EXPECT_EQ(v.find("id")->number(), 9.0);
    EXPECT_FALSE(v.find("ok")->boolean());
    EXPECT_EQ(v.find("error")->find("code")->str(), "overloaded");
}

TEST(ProtocolTest, ResilienceErrorCodesRoundTrip)
{
    // The typed outcomes a resilient client switches on: a missed
    // budget and a dead transport must stay distinguishable from
    // "overloaded" (retryable) and "protocol" (never retryable).
    const struct
    {
        ErrorCode code;
        const char *token;
    } cases[] = {
        {ErrorCode::DeadlineExceeded, "deadline-exceeded"},
        {ErrorCode::ConnectionLost, "connection-lost"},
        {ErrorCode::Overloaded, "overloaded"},
        {ErrorCode::Unavailable, "unavailable"},
    };
    for (const auto &c : cases) {
        EXPECT_STREQ(toString(c.code), c.token);
        const JsonValue v = service::parseJson(
            service::formatErrorResponse(3, c.code, "m"));
        EXPECT_EQ(v.find("error")->find("code")->str(), c.token);
    }
}

TEST(ProtocolTest, DeadlineIsParsedButNeverPartOfTheScenarioKey)
{
    const service::Request with = service::parseRequest(
        "{\"id\":1,\"query\":\"steady\",\"app\":\"FFT\","
        "\"deadline_ms\":250.5}");
    EXPECT_DOUBLE_EQ(with.deadlineMs, 250.5);
    const service::Request without = service::parseRequest(
        "{\"id\":1,\"query\":\"steady\",\"app\":\"FFT\"}");
    // A deadline changes when an answer is still useful, never what
    // the answer is: the dedup/batching identity must ignore it.
    EXPECT_EQ(service::scenarioKey(with), service::scenarioKey(without));
    EXPECT_THROW(service::parseRequest(
                     "{\"query\":\"steady\",\"app\":\"FFT\","
                     "\"deadline_ms\":-5}"),
                 Error);
}

// -------------------------------------------------------------- socket

/** A connected AF_UNIX stream pair with RAII ends. */
struct SocketPair
{
    service::FdGuard a, b;
    SocketPair()
    {
        int fds[2] = {-1, -1};
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        a = service::FdGuard(fds[0]);
        b = service::FdGuard(fds[1]);
    }
};

TEST(ServiceSocketTest, CleanEofAfterFrameIsEofNotReset)
{
    SocketPair pair;
    ASSERT_TRUE(service::sendAll(pair.b.get(), "hello\n"));
    pair.b.reset(); // orderly close, nothing unread on b's side
    service::LineReader reader(pair.a.get(), 1 << 16);
    std::string line;
    EXPECT_EQ(reader.next(line), service::ReadStatus::Frame);
    EXPECT_EQ(line, "hello");
    EXPECT_EQ(reader.next(line), service::ReadStatus::Eof);
}

TEST(ServiceSocketTest, PeerResetMidFrameIsResetNotCleanEof)
{
    SocketPair pair;
    // b starts a frame but never finishes it; a has already sent b
    // data that b never reads, so b's close is a reset (ECONNRESET on
    // a's next read), not an orderly shutdown. The reader must report
    // the difference: Truncated means "peer hung up politely
    // mid-frame", Reset means "peer was torn away".
    ASSERT_TRUE(service::sendAll(pair.a.get(), "unread\n"));
    ASSERT_TRUE(service::sendAll(pair.b.get(), "{\"partial"));
    pair.b.reset(); // closes with unread data: a reset, not an EOF
    service::LineReader reader(pair.a.get(), 1 << 16);
    std::string line;
    EXPECT_EQ(reader.next(line), service::ReadStatus::Reset);
}

namespace eintr_test {
void onSigusr1(int) {} // presence alone makes send() return EINTR
} // namespace eintr_test

TEST(ServiceSocketTest, SendAllSurvivesPartialWritesAndEintr)
{
    SocketPair pair;
    // A tiny send buffer forces many partial writes; a stream of
    // SIGUSR1s at the writer forces EINTR returns between them.
    const int tiny = 1;
    ASSERT_EQ(::setsockopt(pair.a.get(), SOL_SOCKET, SO_SNDBUF, &tiny,
                           sizeof tiny),
              0);
    struct sigaction sa = {};
    sa.sa_handler = eintr_test::onSigusr1; // no SA_RESTART: EINTR
    struct sigaction old = {};
    ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

    std::string payload(1 << 20, '\0');
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<char>('a' + i % 26);
    std::atomic<bool> sent_ok{false};
    std::atomic<bool> stop_pester{false};
    std::thread writer([&] {
        sent_ok = service::sendAll(pair.a.get(), payload);
    });
    std::thread pester([&] {
        // Bounded, throttled signal stream: enough to interrupt many
        // blocked sends without starving a single-core machine.
        for (int i = 0; i < 2000 && !stop_pester; ++i) {
            ::pthread_kill(writer.native_handle(), SIGUSR1);
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    });
    std::string received;
    char chunk[2048];
    while (received.size() < payload.size()) {
        const ssize_t n = ::read(pair.b.get(), chunk, sizeof chunk);
        if (n < 0 && errno == EINTR)
            continue;
        ASSERT_GT(n, 0);
        received.append(chunk, static_cast<std::size_t>(n));
    }
    stop_pester = true;
    pester.join(); // before writer.join(): its pthread_t stays valid
    writer.join();
    ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);
    EXPECT_TRUE(sent_ok);
    EXPECT_EQ(received, payload); // every byte, in order, exactly once
}

TEST(ServiceSocketTest, SendAllTimedTimesOutOnAPeerThatStopsReading)
{
    SocketPair pair;
    const int tiny = 1;
    ASSERT_EQ(::setsockopt(pair.a.get(), SOL_SOCKET, SO_SNDBUF, &tiny,
                           sizeof tiny),
              0);
    const std::string payload(1 << 20, 'x');
    const auto start = std::chrono::steady_clock::now();
    // b never reads: the writer must give up at the timeout instead
    // of blocking forever (the slow-loris write guard).
    EXPECT_EQ(service::sendAllTimed(pair.a.get(), payload, 200),
              service::SendStatus::Timeout);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    EXPECT_LT(elapsed, 30.0);
}

TEST(ServiceSocketTest, SendAllTimedReportsAClosedPeer)
{
    SocketPair pair;
    pair.b.reset(); // peer gone before the write
    const std::string payload(1 << 16, 'x');
    EXPECT_EQ(service::sendAllTimed(pair.a.get(), payload, 1000),
              service::SendStatus::Closed);
}

TEST(ServiceSocketTest, FrameCapBoundaryIsExact)
{
    // Deterministic boundary semantics with a small cap and writes
    // torn so the terminator arrives in a later read than the body: a
    // frame of exactly max_bytes is served, max_bytes + 1 is shed.
    constexpr std::size_t kCap = 64;
    {
        SocketPair pair;
        const std::string body(kCap, 'y');
        ASSERT_TRUE(service::sendAll(pair.b.get(), body));
        ASSERT_TRUE(service::sendAll(pair.b.get(), "\n"));
        service::LineReader reader(pair.a.get(), kCap);
        std::string line;
        EXPECT_EQ(reader.next(line), service::ReadStatus::Frame);
        EXPECT_EQ(line.size(), kCap);
    }
    {
        SocketPair pair;
        const std::string body(kCap + 1, 'y');
        // The terminator must arrive in a read AFTER the over-cap
        // body has been buffered, or the boundary is not what is
        // being tested: wait until the reader drained the body (its
        // receive queue is empty) before sending the newline.
        std::thread writer([&] {
            service::sendAll(pair.b.get(), body);
            int pending = 1;
            while (pending > 0) {
                if (::ioctl(pair.a.get(), FIONREAD, &pending) != 0)
                    break;
                if (pending > 0)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
            }
            service::sendAll(pair.b.get(), "\nok\n");
        });
        service::LineReader reader(pair.a.get(), kCap);
        std::string line;
        EXPECT_EQ(reader.next(line), service::ReadStatus::Oversized);
        // The reader recovers on the same connection.
        EXPECT_EQ(reader.next(line), service::ReadStatus::Frame);
        EXPECT_EQ(line, "ok");
        writer.join();
    }
}

// --------------------------------------------------------- live server

/** Unique per-test socket path (parallel ctest runs share /tmp). */
std::string
testSocket(const char *tag)
{
    return std::string("/tmp/xylem_test_") + tag + "_" +
           std::to_string(::getpid()) + ".sock";
}

/** An in-process server plus a thread running its accept loop. */
class LiveServer
{
  public:
    explicit LiveServer(service::ServerOptions opts)
        : server_(std::move(opts))
    {
        server_.start();
        thread_ = std::thread([this] { server_.run(); });
    }
    ~LiveServer() { stop(); }

    void
    stop()
    {
        server_.requestStop();
        if (thread_.joinable())
            thread_.join();
    }

    service::Server &server() { return server_; }

  private:
    service::Server server_;
    std::thread thread_;
};

/** Send one frame, wait for one response line. */
std::string
roundTrip(const std::string &socket_path, const std::string &frame)
{
    const service::FdGuard fd = service::connectUnix(socket_path);
    std::string framed = frame;
    framed += '\n';
    EXPECT_TRUE(service::sendAll(fd.get(), framed));
    service::LineReader reader(fd.get(), service::kMaxFrameBytes);
    std::string line;
    EXPECT_EQ(reader.next(line), service::ReadStatus::Frame);
    return line;
}

service::ServerOptions
smallServerOptions(const char *tag)
{
    service::ServerOptions opts;
    opts.endpoint = testSocket(tag);
    opts.workers = 2;
    opts.queueCapacity = 16;
    return opts;
}

/** A cheap valid steady request (tiny grid). */
std::string
steadyFrame(std::uint64_t id, const std::string &app, double freq)
{
    std::ostringstream os;
    os << "{\"id\":" << id << ",\"query\":\"steady\",\"app\":\"" << app
       << "\",\"freqGHz\":" << freq
       << ",\"config\":{\"gridNx\":16,\"gridNy\":16}}";
    return os.str();
}

TEST(ServiceTest, MalformedFramesGetTypedErrorsAndServerSurvives)
{
    LiveServer live(smallServerOptions("malformed"));
    const std::string &path = live.server().options().endpoint;

    const char *bad[] = {
        "not json at all",
        "{\"query\":\"warp\"}",
        "{\"query\":\"steady\"}",
        "{\"query\":\"steady\",\"app\":\"NoSuchApp99\","
        "\"config\":{\"gridNx\":16,\"gridNy\":16}}",
        "{\"query\":\"steady\",\"app\":\"FFT\",\"badField\":1}",
    };
    for (const char *frame : bad) {
        const JsonValue resp = service::parseJson(roundTrip(path, frame));
        EXPECT_FALSE(resp.find("ok")->boolean()) << frame;
        EXPECT_NE(resp.find("error"), nullptr) << frame;
    }
    // The server still answers a healthy request afterwards.
    const JsonValue ok =
        service::parseJson(roundTrip(path, steadyFrame(1, "FFT", 2.0)));
    EXPECT_TRUE(ok.find("ok")->boolean());
}

TEST(ServiceTest, OversizedFrameIsSheddedNotFatal)
{
    LiveServer live(smallServerOptions("oversized"));
    const std::string &path = live.server().options().endpoint;

    const service::FdGuard fd = service::connectUnix(path);
    std::string huge(service::kMaxFrameBytes + 64, 'x');
    huge += '\n';
    ASSERT_TRUE(service::sendAll(fd.get(), huge));
    service::LineReader reader(fd.get(), service::kMaxFrameBytes);
    std::string line;
    ASSERT_EQ(reader.next(line), service::ReadStatus::Frame);
    const JsonValue resp = service::parseJson(line);
    EXPECT_FALSE(resp.find("ok")->boolean());
    EXPECT_EQ(resp.find("error")->find("code")->str(), "protocol");

    // Same connection keeps working after the oversized frame.
    std::string frame = steadyFrame(2, "FFT", 2.0);
    frame += '\n';
    ASSERT_TRUE(service::sendAll(fd.get(), frame));
    ASSERT_EQ(reader.next(line), service::ReadStatus::Frame);
    EXPECT_TRUE(service::parseJson(line).find("ok")->boolean());
}

TEST(ServiceTest, FrameOfExactlyMaxFrameBytesIsServed)
{
    LiveServer live(smallServerOptions("exactcap"));
    const std::string &path = live.server().options().endpoint;

    // A frame whose content is exactly kMaxFrameBytes sits ON the
    // boundary and must be served, not shed: pad a valid metrics
    // request with trailing whitespace (JSON-insignificant) to the
    // cap.
    std::string frame = "{\"id\":8,\"query\":\"metrics\"}";
    frame.resize(service::kMaxFrameBytes, ' ');
    const JsonValue resp = service::parseJson(roundTrip(path, frame));
    EXPECT_TRUE(resp.find("ok")->boolean());
    EXPECT_NE(resp.find("metrics"), nullptr);
}

TEST(ServiceTest, TruncatedFrameGetsErrorBeforeClose)
{
    LiveServer live(smallServerOptions("truncated"));
    const std::string &path = live.server().options().endpoint;

    const service::FdGuard fd = service::connectUnix(path);
    // Half a frame, then half-close: no newline ever arrives.
    ASSERT_TRUE(service::sendAll(fd.get(), "{\"query\":\"ste"));
    ::shutdown(fd.get(), SHUT_WR);
    service::LineReader reader(fd.get(), service::kMaxFrameBytes);
    std::string line;
    ASSERT_EQ(reader.next(line), service::ReadStatus::Frame);
    const JsonValue resp = service::parseJson(line);
    EXPECT_FALSE(resp.find("ok")->boolean());
    EXPECT_EQ(resp.find("error")->find("code")->str(), "protocol");
}

TEST(ServiceTest, MetricsQueryAnswersInline)
{
    LiveServer live(smallServerOptions("metrics"));
    const std::string &path = live.server().options().endpoint;
    const JsonValue resp = service::parseJson(
        roundTrip(path, "{\"id\":3,\"query\":\"metrics\"}"));
    EXPECT_TRUE(resp.find("ok")->boolean());
    ASSERT_NE(resp.find("metrics"), nullptr);
    EXPECT_NE(resp.find("metrics")->find("counters"), nullptr);
}

TEST(ServiceTest, ConcurrentIdenticalRequestsDedupAndMatch)
{
    runtime::Metrics::global().reset();
    LiveServer live(smallServerOptions("dedup"));
    const std::string &path = live.server().options().endpoint;

    constexpr int kClients = 6;
    std::vector<std::string> responses(kClients);
    {
        std::vector<std::thread> threads;
        for (int c = 0; c < kClients; ++c)
            threads.emplace_back([&, c] {
                responses[static_cast<std::size_t>(c)] =
                    roundTrip(path, steadyFrame(42, "FFT", 2.4));
            });
        for (auto &t : threads)
            t.join();
    }
    int dedup_responses = 0;
    const JsonValue first = service::parseJson(responses[0]);
    const double first_hotspot = first.find("procHotspotC")->number();
    for (const std::string &text : responses) {
        const JsonValue resp = service::parseJson(text);
        ASSERT_TRUE(resp.find("ok")->boolean());
        // Payload identical across the batch, bit for bit.
        const double hotspot = resp.find("procHotspotC")->number();
        EXPECT_EQ(std::memcmp(&first_hotspot, &hotspot,
                              sizeof(double)),
                  0);
        EXPECT_EQ(first.find("cgIterations")->number(),
                  resp.find("cgIterations")->number());
        if (resp.find("telemetry")->find("dedup")->boolean())
            ++dedup_responses;
    }
    // Six identical frames fired concurrently against two workers:
    // whatever batches formed, every follower response maps 1:1 to a
    // dedup_hits increment, and at least one must have coalesced.
    EXPECT_EQ(runtime::Metrics::global()
                  .counter("service.dedup_hits")
                  .value(),
              static_cast<std::uint64_t>(dedup_responses));
    EXPECT_GE(dedup_responses, 1);
}

TEST(ServiceTest, ServedResponseBitIdenticalToBatchMode)
{
    LiveServer live(smallServerOptions("bitident"));
    const std::string &path = live.server().options().endpoint;
    const JsonValue resp =
        service::parseJson(roundTrip(path, steadyFrame(5, "LU", 2.6)));
    ASSERT_TRUE(resp.find("ok")->boolean());

    std::istringstream config_text("gridNx = 16\ngridNy = 16\n");
    core::StackSystem system(core::parseSystemConfig(config_text));
    const core::EvalResult eval =
        system.evaluate(workloads::profileByName("LU"), 2.6);

    const double served = resp.find("procHotspotC")->number();
    EXPECT_EQ(std::memcmp(&served, &eval.procHotspot, sizeof served), 0)
        << "served " << service::formatDouble(served) << " vs batch "
        << service::formatDouble(eval.procHotspot);
    const double dram = resp.find("dramBottomHotspotC")->number();
    EXPECT_EQ(std::memcmp(&dram, &eval.dramBottomHotspot, sizeof dram),
              0);
}

/**
 * The batch-profitability guard: only MG-preconditioned CG amortises
 * the blocked kernels, so line-CG traffic must never form batches —
 * the worker solves solo and counts each skipped opportunity in
 * service.batch_skipped_unprofitable instead.
 */
TEST(ServiceTest, UnprofitableConfigSkipsBatchFormation)
{
    runtime::Metrics::global().reset();
    service::ServerOptions opts = smallServerOptions("unprofitable");
    opts.workers = 1; // jobs must pile up behind the single worker
    LiveServer live(std::move(opts));
    const std::string &path = live.server().options().endpoint;

    // 6 clients x 3 distinct line-CG scenarios: while the worker
    // solves one, the rest sit queued as exactly the same-config
    // steady candidates the drain loop would otherwise batch.
    constexpr int kClients = 6;
    constexpr int kPerClient = 3;
    std::atomic<int> ok{0};
    {
        std::vector<std::thread> threads;
        for (int c = 0; c < kClients; ++c)
            threads.emplace_back([&, c] {
                for (int r = 0; r < kPerClient; ++r) {
                    const int n = c * kPerClient + r;
                    std::ostringstream os;
                    os << "{\"id\":" << n
                       << ",\"query\":\"steady\",\"app\":\"FFT\""
                       << ",\"freqGHz\":" << 2.0 + 0.1 * n
                       << ",\"config\":{\"gridNx\":16,\"gridNy\":16,"
                          "\"precond\":\"line\"}}";
                    const JsonValue resp =
                        service::parseJson(roundTrip(path, os.str()));
                    if (resp.find("ok")->boolean())
                        ++ok;
                }
            });
        for (auto &t : threads)
            t.join();
    }
    EXPECT_EQ(ok.load(), kClients * kPerClient);
    EXPECT_EQ(runtime::Metrics::global()
                  .counter("service.batches_formed")
                  .value(),
              0u);
    EXPECT_GE(runtime::Metrics::global()
                  .counter("service.batch_skipped_unprofitable")
                  .value(),
              1u);
}

TEST(ServiceTest, QueueOverflowShedsWithOverloadedCode)
{
    runtime::Metrics::global().reset();
    service::ServerOptions opts;
    opts.endpoint = testSocket("shed");
    opts.workers = 1;
    opts.queueCapacity = 1; // one slot: concurrent floods must shed
    LiveServer live(std::move(opts));
    const std::string &path = live.server().options().endpoint;

    constexpr int kClients = 8;
    std::atomic<int> overloaded{0};
    std::atomic<int> ok{0};
    {
        std::vector<std::thread> threads;
        for (int c = 0; c < kClients; ++c)
            threads.emplace_back([&, c] {
                const JsonValue resp = service::parseJson(roundTrip(
                    path,
                    steadyFrame(static_cast<std::uint64_t>(c), "FFT",
                                2.0 + 0.25 * c)));
                if (resp.find("ok")->boolean())
                    ++ok;
                else if (resp.find("error")->find("code")->str() ==
                         "overloaded")
                    ++overloaded;
            });
        for (auto &t : threads)
            t.join();
    }
    // Every request is answered one way or the other; any shed request
    // carries the typed overloaded code.
    EXPECT_EQ(ok.load() + overloaded.load(), kClients);
    EXPECT_EQ(runtime::Metrics::global().counter("service.shed").value(),
              static_cast<std::uint64_t>(overloaded.load()));
}

TEST(ServiceTest, DrainAnswersQueuedRequestsThenStops)
{
    runtime::Metrics::global().reset();
    LiveServer live(smallServerOptions("drain"));
    const std::string &path = live.server().options().endpoint;

    // Launch a few requests and wait until the server has admitted
    // all of them, then stop it: every in-flight request must still
    // be answered (graceful drain, not abort).
    constexpr int kClients = 4;
    std::vector<std::string> responses(kClients);
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c)
        threads.emplace_back([&, c] {
            responses[static_cast<std::size_t>(c)] = roundTrip(
                path, steadyFrame(static_cast<std::uint64_t>(c), "FFT",
                                  2.0 + 0.2 * c));
        });
    const auto &admitted =
        runtime::Metrics::global().counter("service.requests");
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (admitted.value() < kClients &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_EQ(admitted.value(), static_cast<std::uint64_t>(kClients));
    live.stop(); // graceful: drains the queue before returning
    for (auto &t : threads)
        t.join();
    for (const std::string &text : responses) {
        ASSERT_FALSE(text.empty());
        const JsonValue resp = service::parseJson(text);
        EXPECT_TRUE(resp.find("ok")->boolean());
    }
    // The socket file is gone after the drain.
    EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

// ------------------------------------------------------------ batching

/** Response payload up to the telemetry block (which holds timings). */
std::string
payloadPrefix(const std::string &resp)
{
    const auto pos = resp.find("\"telemetry\"");
    return pos == std::string::npos ? resp : resp.substr(0, pos);
}

/** Every response-visible summary field, compared bit for bit. */
void
expectSummariesBitIdentical(const service::EvalSummary &a,
                            const service::EvalSummary &b)
{
    const auto same = [](double x, double y) {
        return std::memcmp(&x, &y, sizeof x) == 0;
    };
    EXPECT_TRUE(same(a.procHotspotC, b.procHotspotC));
    EXPECT_TRUE(same(a.dramBottomHotspotC, b.dramBottomHotspotC));
    EXPECT_TRUE(same(a.procPowerW, b.procPowerW));
    EXPECT_TRUE(same(a.dramPowerW, b.dramPowerW));
    EXPECT_TRUE(same(a.simSeconds, b.simSeconds));
    EXPECT_EQ(a.cgIterations, b.cgIterations);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.escalation, b.escalation);
    ASSERT_EQ(a.coreHotspotC.size(), b.coreHotspotC.size());
    for (std::size_t c = 0; c < a.coreHotspotC.size(); ++c)
        EXPECT_TRUE(same(a.coreHotspotC[c], b.coreHotspotC[c]));
}

TEST(EngineBatchTest, BatchOutcomesBitIdenticalToSerialRuns)
{
    service::Engine engine{service::EngineOptions{}};
    const char *apps[] = {"FFT", "LU", "Radix", "Barnes", "CG"};
    std::vector<service::Request> reqs;
    for (int i = 0; i < 5; ++i)
        reqs.push_back(service::parseRequest(
            steadyFrame(static_cast<std::uint64_t>(i),
                        apps[static_cast<std::size_t>(i)],
                        2.0 + 0.2 * i)));
    std::vector<const service::Request *> ptrs;
    for (const auto &r : reqs)
        ptrs.push_back(&r);
    const auto outcomes = engine.runBatch(ptrs);
    ASSERT_EQ(outcomes.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        ASSERT_TRUE(outcomes[i].ok) << outcomes[i].message;
        const service::EvalSummary solo = engine.run(reqs[i]);
        expectSummariesBitIdentical(outcomes[i].summary, solo);
    }
}

TEST(EngineBatchTest, BadAppNameGetsItsOwnOutcomeNotTheBatchs)
{
    service::Engine engine{service::EngineOptions{}};
    std::vector<service::Request> reqs;
    reqs.push_back(service::parseRequest(steadyFrame(1, "FFT", 2.4)));
    reqs.push_back(
        service::parseRequest(steadyFrame(2, "NoSuchApp99", 2.4)));
    reqs.push_back(service::parseRequest(steadyFrame(3, "LU", 2.4)));
    std::vector<const service::Request *> ptrs;
    for (const auto &r : reqs)
        ptrs.push_back(&r);
    const auto outcomes = engine.runBatch(ptrs);
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_FALSE(outcomes[1].ok);
    EXPECT_EQ(outcomes[1].code, ErrorCode::Config);
    for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
        ASSERT_TRUE(outcomes[i].ok) << outcomes[i].message;
        expectSummariesBitIdentical(outcomes[i].summary,
                                    engine.run(reqs[i]));
    }
}

/** steadyFrame with an explicit square grid edge. */
std::string
steadyFrameOnGrid(std::uint64_t id, const std::string &app, double freq,
                  int edge)
{
    std::ostringstream os;
    os << "{\"id\":" << id << ",\"query\":\"steady\",\"app\":\"" << app
       << "\",\"freqGHz\":" << freq << ",\"config\":{\"gridNx\":" << edge
       << ",\"gridNy\":" << edge << "}}";
    return os.str();
}

TEST(ServiceTest, DistinctRequestBurstDrainsIntoOneBlockSolve)
{
    runtime::Metrics::global().reset();
    service::ServerOptions opts;
    opts.endpoint = testSocket("burst");
    opts.workers = 1; // the burst must queue behind the blocker
    opts.queueCapacity = 32;
    LiveServer live(std::move(opts));
    const std::string &path = live.server().options().endpoint;

    // Occupy the single worker with a cold large-grid solve so the
    // burst piles up in the queue and drains into one block solve.
    std::thread blocker([&] {
        roundTrip(path, steadyFrameOnGrid(99, "FFT", 2.0, 64));
    });
    const auto &admitted =
        runtime::Metrics::global().counter("service.requests");
    while (admitted.value() < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    const char *apps[] = {"FFT", "LU", "Radix", "Barnes", "CG", "FT"};
    constexpr int kBurst = 6;
    std::vector<std::string> burst(kBurst);
    {
        std::vector<std::thread> threads;
        for (int c = 0; c < kBurst; ++c)
            threads.emplace_back([&, c] {
                burst[static_cast<std::size_t>(c)] = roundTrip(
                    path,
                    steadyFrame(static_cast<std::uint64_t>(c),
                                apps[static_cast<std::size_t>(c)],
                                2.0 + 0.1 * c));
            });
        for (auto &t : threads)
            t.join();
    }
    blocker.join();

    auto &snap = runtime::Metrics::global();
    EXPECT_GE(snap.counter("service.batches_formed").value(), 1u);
    EXPECT_GE(snap.counter("service.batched_requests").value(), 2u);
    EXPECT_EQ(snap.counter("service.batch_fallbacks").value(), 0u);

    // Byte-identical to serial serving: replay each burst request on
    // the now-idle server (one at a time, so no batch forms) and
    // compare everything before the telemetry block.
    for (int c = 0; c < kBurst; ++c) {
        const std::string solo = roundTrip(
            path, steadyFrame(static_cast<std::uint64_t>(c),
                              apps[static_cast<std::size_t>(c)],
                              2.0 + 0.1 * c));
        EXPECT_TRUE(
            service::parseJson(burst[static_cast<std::size_t>(c)])
                .find("ok")
                ->boolean());
        EXPECT_EQ(payloadPrefix(burst[static_cast<std::size_t>(c)]),
                  payloadPrefix(solo))
            << "batched response for " << apps[c]
            << " differs from serial serving";
    }
}

TEST(ServiceTest, MixedConfigBurstSplitsIntoPerConfigBatches)
{
    runtime::Metrics::global().reset();
    service::ServerOptions opts;
    opts.endpoint = testSocket("mixed");
    opts.workers = 1;
    opts.queueCapacity = 32;
    LiveServer live(std::move(opts));
    const std::string &path = live.server().options().endpoint;

    std::thread blocker([&] {
        roundTrip(path, steadyFrameOnGrid(99, "FFT", 2.0, 64));
    });
    const auto &admitted =
        runtime::Metrics::global().counter("service.requests");
    while (admitted.value() < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // Two distinct configs interleaved: the drain must never put them
    // in the same batch (Engine::runBatch asserts one config text per
    // batch, so cross-batching would abort the daemon, not just give
    // wrong answers).
    const char *apps[] = {"FFT", "LU", "Radix", "Barnes"};
    constexpr int kPerConfig = 4;
    std::vector<std::string> responses(2 * kPerConfig);
    {
        std::vector<std::thread> threads;
        for (int c = 0; c < 2 * kPerConfig; ++c)
            threads.emplace_back([&, c] {
                const int edge = (c % 2 == 0) ? 16 : 20;
                responses[static_cast<std::size_t>(c)] = roundTrip(
                    path,
                    steadyFrameOnGrid(
                        static_cast<std::uint64_t>(c),
                        apps[static_cast<std::size_t>(c / 2)],
                        2.0 + 0.1 * c, edge));
            });
        for (auto &t : threads)
            t.join();
    }
    blocker.join();

    for (int c = 0; c < 2 * kPerConfig; ++c) {
        const std::string &text =
            responses[static_cast<std::size_t>(c)];
        ASSERT_FALSE(text.empty());
        EXPECT_TRUE(service::parseJson(text).find("ok")->boolean())
            << text;
        const int edge = (c % 2 == 0) ? 16 : 20;
        const std::string solo = roundTrip(
            path, steadyFrameOnGrid(
                      static_cast<std::uint64_t>(c),
                      apps[static_cast<std::size_t>(c / 2)],
                      2.0 + 0.1 * c, edge));
        EXPECT_EQ(payloadPrefix(text), payloadPrefix(solo));
    }
}

TEST(ServiceTest, BurstBeyondQueueCapacityShedsThenBatchesTheRest)
{
    runtime::Metrics::global().reset();
    service::ServerOptions opts;
    opts.endpoint = testSocket("bigburst");
    opts.workers = 1;
    opts.queueCapacity = 4; // well below batch.maxRhs (16)
    LiveServer live(std::move(opts));
    const std::string &path = live.server().options().endpoint;

    constexpr int kClients = 12;
    std::atomic<int> ok{0};
    std::atomic<int> overloaded{0};
    {
        std::vector<std::thread> threads;
        for (int c = 0; c < kClients; ++c)
            threads.emplace_back([&, c] {
                const service::JsonValue resp =
                    service::parseJson(roundTrip(
                        path,
                        steadyFrame(static_cast<std::uint64_t>(c),
                                    "FFT", 2.0 + 0.05 * c)));
                if (resp.find("ok")->boolean())
                    ++ok;
                else if (resp.find("error")->find("code")->str() ==
                         "overloaded")
                    ++overloaded;
            });
        for (auto &t : threads)
            t.join();
    }
    // Every request is either answered or shed with the typed code; a
    // batch can only ever drain what admission let through.
    EXPECT_EQ(ok.load() + overloaded.load(), kClients);
    EXPECT_EQ(runtime::Metrics::global().counter("service.shed").value(),
              static_cast<std::uint64_t>(overloaded.load()));
}

// ------------------------------------------------- latency histogram

TEST(MetricsHistogramTest, QuantilesLandInTheRightBucket)
{
    runtime::LatencyHistogram h;
    for (int i = 0; i < 90; ++i)
        h.observe(1e-3); // 90% at 1 ms
    for (int i = 0; i < 10; ++i)
        h.observe(1.0); // 10% at 1 s
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 100u);
    // Log-spaced buckets are ~24% wide: accept that tolerance.
    EXPECT_NEAR(snap.quantile(0.50), 1e-3, 0.3e-3);
    EXPECT_NEAR(snap.quantile(0.99), 1.0, 0.3);
    EXPECT_NEAR(snap.meanSeconds(), 0.1009, 0.01);
}

TEST(MetricsHistogramTest, NearbyTailQuantilesStayDistinct)
{
    // Regression: with 96 wide (~24%) buckets and midpoint
    // extraction, a tight latency distribution put p95 and p99 in the
    // same bucket and both collapsed to one midpoint — perf_service
    // reported p95_s == p99_s for every run. Narrower buckets plus
    // rank interpolation keep nearby tail quantiles ordered.
    runtime::LatencyHistogram h;
    for (int i = 0; i < 1000; ++i)
        h.observe(1e-3 * (1.0 + 2e-4 * i)); // 1.0 ms .. 1.2 ms
    const auto snap = h.snapshot();
    const double p50 = snap.quantile(0.50);
    const double p95 = snap.quantile(0.95);
    const double p99 = snap.quantile(0.99);
    EXPECT_LT(p50, p95);
    EXPECT_LT(p95, p99);
    EXPECT_NEAR(p95, 1.19e-3, 0.15e-3);
    EXPECT_NEAR(p99, 1.198e-3, 0.15e-3);
}

TEST(MetricsHistogramTest, UnderflowOverflowAndGarbageAreBounded)
{
    runtime::LatencyHistogram h;
    h.observe(0.0);
    h.observe(-1.0);
    h.observe(1e12);
    h.observe(std::numeric_limits<double>::quiet_NaN());
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 4u);
    EXPECT_GT(snap.quantile(0.99), 0.0);
}

TEST(MetricsHistogramTest, SurfacesInMetricsJson)
{
    runtime::Metrics::global().reset();
    runtime::Metrics::global()
        .histogram("test.histogram_seconds")
        .observe(0.5);
    const std::string json = runtime::Metrics::global().toJson();
    EXPECT_NE(json.find("\"test.histogram_seconds\""),
              std::string::npos);
    EXPECT_NE(json.find("\"p99_s\""), std::string::npos);
    const auto snap = runtime::Metrics::global().snapshot();
    EXPECT_GT(snap.histogramQuantile("test.histogram_seconds", 0.5),
              0.3);
    runtime::Metrics::global().reset();
}

} // namespace
