/**
 * @file
 * Chaos tests of the serving daemon: end-to-end deadlines, the
 * socket-layer fault injector, watchdog supervision, and crash-safe
 * restart with the request journal.
 *
 * The in-process tests run a LiveServer (as service_test does) with
 * fault specs armed through FaultInjector::ScopedSpec, so the exact
 * accept/read/write paths that production traffic takes are the ones
 * under fault. The crash test fork/execs the real xylem_serve binary
 * (XYLEM_SERVE_BIN, like resume_test's XYLEM_SWEEP_TOOL), SIGKILLs it
 * mid-burst, and checks the journal's accounting: every admitted
 * request is either answered or enumerated as lost, and answered
 * responses are bit-identical to a clean replay on the restarted
 * daemon.
 *
 * Suite names carry the Chaos/Watchdog prefixes the CI TSan test
 * regex selects on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "runtime/fault_injection.hpp"
#include "runtime/metrics.hpp"
#include "service/engine.hpp"
#include "service/journal.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/socket.hpp"

#ifndef XYLEM_SERVE_BIN
#error "chaos_test needs XYLEM_SERVE_BIN (the xylem_serve binary path)"
#endif

namespace {

using namespace xylem;
using service::JsonValue;

/** Unique per-test path under /tmp (parallel ctest runs share it). */
std::string
testPath(const char *tag, const char *suffix)
{
    return std::string("/tmp/xylem_chaos_") + tag + "_" +
           std::to_string(::getpid()) + suffix;
}

/** An in-process server plus a thread running its accept loop. */
class LiveServer
{
  public:
    explicit LiveServer(service::ServerOptions opts)
        : server_(std::move(opts))
    {
        server_.start();
        thread_ = std::thread([this] { server_.run(); });
    }
    ~LiveServer() { stop(); }

    void
    stop()
    {
        server_.requestStop();
        if (thread_.joinable())
            thread_.join();
    }

    service::Server &server() { return server_; }

  private:
    service::Server server_;
    std::thread thread_;
};

service::ServerOptions
smallServerOptions(const char *tag)
{
    service::ServerOptions opts;
    opts.endpoint = testPath(tag, ".sock");
    opts.workers = 2;
    opts.queueCapacity = 32;
    // CI runs the whole suite a second time with an ambient intra-solve
    // thread grant, so every chaos contract (deadlines, faults,
    // watchdog, crash-restart) is also exercised with the load-adaptive
    // threaded solves underneath. Results must not change: the grant is
    // determinism-neutral by the PR-9 contract.
    if (const char *grant = std::getenv("XYLEM_CHAOS_SOLVER_THREADS"))
        opts.engine.solverThreads = std::atoi(grant);
    return opts;
}

/** Send one frame, wait for one response line. */
std::string
roundTrip(const std::string &socket_path, const std::string &frame)
{
    const service::FdGuard fd = service::connectUnix(socket_path);
    std::string framed = frame;
    framed += '\n';
    EXPECT_TRUE(service::sendAll(fd.get(), framed));
    service::LineReader reader(fd.get(), service::kMaxFrameBytes);
    std::string line;
    EXPECT_EQ(reader.next(line), service::ReadStatus::Frame);
    return line;
}

/** A cheap valid steady request on an explicit square grid. */
std::string
steadyFrame(std::uint64_t id, const std::string &app, double freq,
            int edge = 16, double deadline_ms = 0.0)
{
    std::ostringstream os;
    os << "{\"id\":" << id << ",\"query\":\"steady\",\"app\":\"" << app
       << "\",\"freqGHz\":" << freq;
    if (deadline_ms > 0.0)
        os << ",\"deadline_ms\":" << deadline_ms;
    os << ",\"config\":{\"gridNx\":" << edge << ",\"gridNy\":" << edge
       << "}}";
    return os.str();
}

/** Response payload up to the telemetry block (which holds timings). */
std::string
payloadPrefix(const std::string &resp)
{
    const auto pos = resp.find("\"telemetry\"");
    return pos == std::string::npos ? resp : resp.substr(0, pos);
}

std::string
errorCodeOf(const JsonValue &resp)
{
    const JsonValue *err = resp.find("error");
    if (!err)
        return "";
    const JsonValue *code = err->find("code");
    return code && code->isString() ? code->str() : "";
}

// ------------------------------------------------------------ journal

TEST(ChaosJournalTest, ScanEnumeratesAdmittedButUnansweredRequests)
{
    const std::string path = testPath("journal_scan", ".jnl");
    ::unlink(path.c_str());
    {
        service::RequestJournal journal(path);
        journal.recordAdmitted(1, 11, "steady|FFT|2.4");
        journal.recordAdmitted(2, 12, "steady|LU|2.4");
        journal.recordAdmitted(3, 13, "steady|CG|2.4");
        journal.recordAnswered(2, 12);
        const auto recovery = service::RequestJournal::scan(path);
        EXPECT_EQ(recovery.admitted, 3u);
        EXPECT_EQ(recovery.answered, 1u);
        EXPECT_FALSE(recovery.tornTail);
        ASSERT_EQ(recovery.lost.size(), 2u);
        EXPECT_EQ(recovery.lost[0].seq, 1u);
        EXPECT_EQ(recovery.lost[0].id, 11u);
        EXPECT_EQ(recovery.lost[0].scenario, "steady|FFT|2.4");
        EXPECT_EQ(recovery.lost[1].seq, 3u);
        EXPECT_EQ(recovery.lost[1].id, 13u);
    }
    ::unlink(path.c_str());
}

TEST(ChaosJournalTest, TornTailEndsScanButKeepsThePrefix)
{
    const std::string path = testPath("journal_torn", ".jnl");
    ::unlink(path.c_str());
    {
        service::RequestJournal journal(path);
        journal.recordAdmitted(1, 21, "steady|FFT|2.0");
        journal.recordAnswered(1, 21);
        journal.recordAdmitted(2, 22, "steady|LU|2.0");
    }
    {
        // A crash mid-append leaves a half-written record at the tail.
        std::ofstream torn(path, std::ios::binary | std::ios::app);
        torn.write("\x40\x00\x00\x00\xde\xad", 6);
    }
    const auto recovery = service::RequestJournal::scan(path);
    EXPECT_TRUE(recovery.tornTail);
    EXPECT_EQ(recovery.admitted, 2u);
    EXPECT_EQ(recovery.answered, 1u);
    ASSERT_EQ(recovery.lost.size(), 1u);
    EXPECT_EQ(recovery.lost[0].id, 22u);
    ::unlink(path.c_str());
}

TEST(ChaosJournalTest, ReopeningReportsRecoveryAndStartsFreshEpoch)
{
    const std::string path = testPath("journal_epoch", ".jnl");
    ::unlink(path.c_str());
    {
        service::RequestJournal journal(path);
        journal.recordAdmitted(7, 70, "steady|Radix|2.2");
    }
    {
        service::RequestJournal reopened(path);
        ASSERT_EQ(reopened.recovery().lost.size(), 1u);
        EXPECT_EQ(reopened.recovery().lost[0].id, 70u);
    }
    // The reopen truncated the file: a fresh scan sees an empty epoch.
    const auto recovery = service::RequestJournal::scan(path);
    EXPECT_EQ(recovery.admitted, 0u);
    EXPECT_TRUE(recovery.lost.empty());
    ::unlink(path.c_str());
}

TEST(ChaosJournalTest, MissingJournalScansAsEmptyRecovery)
{
    const auto recovery = service::RequestJournal::scan(
        testPath("journal_missing", ".jnl"));
    EXPECT_EQ(recovery.admitted, 0u);
    EXPECT_EQ(recovery.answered, 0u);
    EXPECT_TRUE(recovery.lost.empty());
    EXPECT_FALSE(recovery.tornTail);
}

// --------------------------------------------------------- fault spec

TEST(ChaosFaultSpecTest, ServiceKeysParseAndDecideDeterministically)
{
    const auto spec = runtime::FaultSpec::parse(
        "seed=9,accept_fail=0.5,read_torn=0.5,write_torn=0.5,"
        "slow_client=0.5,conn_reset=0.5,worker_stall=0.5,stall_ms=75");
    EXPECT_DOUBLE_EQ(spec.acceptFail, 0.5);
    EXPECT_DOUBLE_EQ(spec.readTorn, 0.5);
    EXPECT_DOUBLE_EQ(spec.writeTorn, 0.5);
    EXPECT_DOUBLE_EQ(spec.slowClient, 0.5);
    EXPECT_DOUBLE_EQ(spec.connReset, 0.5);
    EXPECT_DOUBLE_EQ(spec.workerStall, 0.5);
    EXPECT_EQ(spec.stallMs, 75);
    EXPECT_TRUE(spec.any());

    runtime::FaultInjector::ScopedSpec scoped(
        "seed=9,accept_fail=0.5,read_torn=0.5,worker_stall=0.5,"
        "stall_ms=75");
    auto &injector = runtime::FaultInjector::global();
    int accept_hits = 0, torn_hits = 0, stall_hits = 0;
    for (std::uint64_t id = 1; id <= 64; ++id) {
        // Decisions are pure hashes of (seed, kind, id): asking twice
        // gives the same answer, and the kinds decide independently.
        EXPECT_EQ(injector.injectAcceptFailure(id),
                  injector.injectAcceptFailure(id));
        EXPECT_EQ(injector.tornReadLimit(id), injector.tornReadLimit(id));
        accept_hits += injector.injectAcceptFailure(id) ? 1 : 0;
        torn_hits += injector.tornReadLimit(id) > 0 ? 1 : 0;
        const int stall = injector.workerStallMs(id);
        EXPECT_TRUE(stall == 0 || stall == 75);
        stall_hits += stall > 0 ? 1 : 0;
    }
    // p=0.5 over 64 ids: each kind fires sometimes, never always.
    EXPECT_GT(accept_hits, 0);
    EXPECT_LT(accept_hits, 64);
    EXPECT_GT(torn_hits, 0);
    EXPECT_LT(torn_hits, 64);
    EXPECT_GT(stall_hits, 0);
    EXPECT_LT(stall_hits, 64);
}

// ---------------------------------------------------------- deadlines

TEST(ChaosDeadlineTest, SubSolveDeadlineGetsTypedErrorInBoundedTime)
{
    runtime::Metrics::global().reset();
    LiveServer live(smallServerOptions("deadline"));
    const std::string &path = live.server().options().endpoint;

    // 1 ms of budget against a cold 32x32 solve: the request must be
    // answered with the typed deadline error (shed at pickup, aborted
    // by the cooperative task deadline, or converted when the solve
    // completed late) -- and promptly, not after a full solve ladder.
    const auto start = std::chrono::steady_clock::now();
    const JsonValue resp = service::parseJson(
        roundTrip(path, steadyFrame(1, "FFT", 2.0, 32, 1.0)));
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    EXPECT_FALSE(resp.find("ok")->boolean());
    EXPECT_EQ(errorCodeOf(resp), "deadline-exceeded");
    EXPECT_LT(elapsed, 60.0);
    // The counter increments after the response write, so it can
    // trail the client's read by a moment: poll instead of asserting.
    const auto &exceeded = runtime::Metrics::global().counter(
        "service.deadline_exceeded");
    const auto counter_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (exceeded.value() < 1 &&
           std::chrono::steady_clock::now() < counter_deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_GE(exceeded.value(), 1u);
}

TEST(ChaosDeadlineTest, GenerousDeadlineStillSucceeds)
{
    LiveServer live(smallServerOptions("deadline_ok"));
    const std::string &path = live.server().options().endpoint;
    const JsonValue resp = service::parseJson(
        roundTrip(path, steadyFrame(2, "LU", 2.4, 16, 300000.0)));
    EXPECT_TRUE(resp.find("ok")->boolean());
}

TEST(ChaosDeadlineTest, ExpiredBatchMemberFailsAloneOthersComplete)
{
    service::Engine engine{service::EngineOptions{}};
    std::vector<service::Request> reqs;
    reqs.push_back(service::parseRequest(steadyFrame(1, "FFT", 2.0)));
    reqs.push_back(service::parseRequest(steadyFrame(2, "LU", 2.2)));
    reqs.push_back(service::parseRequest(steadyFrame(3, "CG", 2.4)));
    std::vector<const service::Request *> ptrs;
    for (const auto &r : reqs)
        ptrs.push_back(&r);
    // Member 1's budget expired before the batch formed; the others
    // carry no deadline. One slow column must not blow the block.
    std::vector<service::Engine::Deadline> deadlines(3);
    deadlines[1] =
        std::chrono::steady_clock::now() - std::chrono::seconds(1);
    const auto outcomes = engine.runBatch(ptrs, deadlines);
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_FALSE(outcomes[1].ok);
    EXPECT_EQ(outcomes[1].code, ErrorCode::DeadlineExceeded);
    for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
        ASSERT_TRUE(outcomes[i].ok) << outcomes[i].message;
        // The survivors' results equal deadline-free solo runs bit
        // for bit (fallback re-solves cold, same as a fresh request).
        const service::EvalSummary solo = engine.run(reqs[i]);
        EXPECT_EQ(outcomes[i].summary.procHotspotC, solo.procHotspotC);
        EXPECT_EQ(outcomes[i].summary.cgIterations, solo.cgIterations);
    }
}

// ----------------------------------------------------------- watchdog

TEST(WatchdogTest, HealthVerbIsAnsweredInlineWithServerShape)
{
    LiveServer live(smallServerOptions("health"));
    const std::string &path = live.server().options().endpoint;
    const JsonValue resp = service::parseJson(
        roundTrip(path, "{\"id\":4,\"query\":\"health\"}"));
    EXPECT_TRUE(resp.find("ok")->boolean());
    EXPECT_TRUE(resp.find("ready")->boolean());
    EXPECT_TRUE(resp.find("accepting")->boolean());
    EXPECT_EQ(resp.find("workers")->number(), 2.0);
    EXPECT_EQ(resp.find("stalledWorkers")->number(), 0.0);
    EXPECT_EQ(resp.find("journalLostPrevious")->number(), 0.0);
    EXPECT_GE(resp.find("uptimeSeconds")->number(), 0.0);
}

TEST(WatchdogTest, StalledWorkerFailsReadinessThenRecovers)
{
    runtime::Metrics::global().reset();
    service::ServerOptions opts = smallServerOptions("stall");
    opts.workers = 1;
    opts.watchdogIntervalSeconds = 0.05;
    opts.stallThresholdSeconds = 0.1;
    LiveServer live(std::move(opts));
    const std::string &path = live.server().options().endpoint;

    // Every picked-up job stalls 700 ms before serving; the watchdog
    // (threshold 100 ms) must notice, and the health verb -- answered
    // inline, never queued -- must stay reachable and report it.
    runtime::FaultInjector::ScopedSpec spec(
        "seed=1,worker_stall=1,stall_ms=700");
    std::thread client([&] {
        roundTrip(path, steadyFrame(1, "FFT", 2.0));
    });
    bool saw_stalled = false;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!saw_stalled && std::chrono::steady_clock::now() < deadline) {
        const JsonValue health = service::parseJson(
            roundTrip(path, "{\"id\":5,\"query\":\"health\"}"));
        if (health.find("stalledWorkers")->number() > 0.0) {
            saw_stalled = true;
            EXPECT_FALSE(health.find("ready")->boolean());
        } else {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
    }
    client.join();
    EXPECT_TRUE(saw_stalled);
    EXPECT_GE(runtime::Metrics::global()
                  .counter("watchdog.stalled_workers")
                  .value(),
              1u);
    // With the job served, readiness returns within a few ticks.
    bool recovered = false;
    while (!recovered && std::chrono::steady_clock::now() < deadline) {
        const JsonValue health = service::parseJson(
            roundTrip(path, "{\"id\":6,\"query\":\"health\"}"));
        recovered = health.find("ready")->boolean();
        if (!recovered)
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(recovered);
}

// --------------------------------------------------- socket chaos

TEST(ChaosSlowLorisTest, TrickledFrameIsShedByTheIdleTimeout)
{
    runtime::Metrics::global().reset();
    service::ServerOptions opts = smallServerOptions("loris");
    opts.idleTimeoutSeconds = 0.25;
    LiveServer live(std::move(opts));
    const std::string &path = live.server().options().endpoint;

    // Half a frame, then silence: the reader must shed the connection
    // after the mid-frame idle timeout with a typed protocol error.
    const service::FdGuard fd = service::connectUnix(path);
    ASSERT_TRUE(service::sendAll(fd.get(), "{\"id\":9,\"que"));
    service::LineReader reader(fd.get(), service::kMaxFrameBytes);
    std::string line;
    ASSERT_EQ(reader.next(line), service::ReadStatus::Frame);
    const JsonValue resp = service::parseJson(line);
    EXPECT_FALSE(resp.find("ok")->boolean());
    EXPECT_EQ(errorCodeOf(resp), "protocol");
    EXPECT_NE(resp.find("error")->find("message")->str().find(
                  "frame incomplete"),
              std::string::npos);
    EXPECT_EQ(runtime::Metrics::global()
                  .counter("service.idle_timeouts")
                  .value(),
              1u);

    // A fresh well-behaved connection is unaffected.
    const JsonValue ok =
        service::parseJson(roundTrip(path, steadyFrame(1, "FFT", 2.0)));
    EXPECT_TRUE(ok.find("ok")->boolean());
}

TEST(ChaosConnResetTest, ClientAbortWithUnreadResponseCountsReset)
{
    runtime::Metrics::global().reset();
    LiveServer live(smallServerOptions("reset"));
    const std::string &path = live.server().options().endpoint;
    auto &metrics = runtime::Metrics::global();

    {
        service::FdGuard fd = service::connectUnix(path);
        std::string framed = steadyFrame(1, "FFT", 2.0);
        framed += '\n';
        ASSERT_TRUE(service::sendAll(fd.get(), framed));
        // Wait for the response to land in our receive queue, then
        // close without reading it: on Linux the peer (the server's
        // reader) observes ECONNRESET, not a clean EOF.
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(60);
        while (metrics.counter("service.responses").value() < 1 &&
               std::chrono::steady_clock::now() < deadline)
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        ASSERT_GE(metrics.counter("service.responses").value(), 1u);
    } // abrupt close with the response unread

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (metrics.counter("service.conn_reset").value() < 1 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(metrics.counter("service.conn_reset").value(), 1u);

    // A clean request/read/close cycle must NOT count as a reset.
    const JsonValue ok =
        service::parseJson(roundTrip(path, steadyFrame(2, "LU", 2.2)));
    EXPECT_TRUE(ok.find("ok")->boolean());
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_EQ(metrics.counter("service.conn_reset").value(), 1u);
}

// ------------------------------------------------------- fault burst

TEST(ChaosBurstTest, BurstUnderAmbientFaultsIsAnsweredBitIdentically)
{
    runtime::Metrics::global().reset();
    LiveServer live(smallServerOptions("burst"));
    const std::string &path = live.server().options().endpoint;

    const char *apps[] = {"FFT", "LU", "Radix", "Barnes", "CG", "FT"};
    constexpr int kClients = 6;
    std::vector<std::string> responses(kClients);
    {
        // Ambient chaos on the server's own socket paths: dropped
        // accepts, reads torn to 3 bytes, responses torn to 7-byte
        // chunks. Clients retry transport failures with fresh
        // connections, as the real CLI client does.
        runtime::FaultInjector::ScopedSpec spec(
            "seed=11,accept_fail=0.25,read_torn=0.4,write_torn=0.4");
        std::vector<std::thread> threads;
        for (int c = 0; c < kClients; ++c)
            threads.emplace_back([&, c] {
                std::string framed = steadyFrame(
                    static_cast<std::uint64_t>(c),
                    apps[static_cast<std::size_t>(c)], 2.0 + 0.1 * c);
                framed += '\n';
                for (int attempt = 0; attempt < 12; ++attempt) {
                    try {
                        const service::FdGuard fd =
                            service::connectUnix(path);
                        if (!service::sendAll(fd.get(), framed))
                            continue;
                        service::LineReader reader(
                            fd.get(), service::kMaxFrameBytes);
                        std::string line;
                        if (reader.next(line) ==
                            service::ReadStatus::Frame) {
                            responses[static_cast<std::size_t>(c)] =
                                line;
                            return;
                        }
                    } catch (const Error &) {
                        // connect raced a dropped accept; retry
                    }
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(10));
                }
            });
        for (auto &t : threads)
            t.join();
        // The chaos actually happened: the injector's decisions are a
        // pure hash of (seed, kind, id), so with seed 11 this is
        // deterministic, not probabilistic.
        auto &m = runtime::Metrics::global();
        EXPECT_GE(m.counter("fault.accept_failures").value() +
                      m.counter("fault.torn_reads").value() +
                      m.counter("fault.torn_writes").value(),
                  1u);
    } // spec disarmed: replays below run clean

    for (int c = 0; c < kClients; ++c) {
        const std::string &text = responses[static_cast<std::size_t>(c)];
        ASSERT_FALSE(text.empty())
            << apps[c] << " never got a response despite retries";
        EXPECT_TRUE(service::parseJson(text).find("ok")->boolean())
            << text;
        // Responses served under fault injection are bit-identical to
        // a clean replay (faults touch the transport, never the math).
        const std::string clean = roundTrip(
            path, steadyFrame(static_cast<std::uint64_t>(c),
                              apps[static_cast<std::size_t>(c)],
                              2.0 + 0.1 * c));
        EXPECT_EQ(payloadPrefix(text), payloadPrefix(clean)) << apps[c];
    }
}

// ------------------------------------------------- crash and restart

/** One burst client against the external daemon; tolerates the
 *  daemon dying mid-request (records an empty response). */
void
chaosClient(const std::string &path, const std::string &frame,
            std::string &out, std::atomic<int> &responded)
{
    try {
        const service::FdGuard fd = service::connectUnix(path);
        std::string framed = frame;
        framed += '\n';
        if (!service::sendAll(fd.get(), framed))
            return;
        service::LineReader reader(fd.get(), service::kMaxFrameBytes);
        std::string line;
        if (reader.next(line) == service::ReadStatus::Frame) {
            out = line;
            responded.fetch_add(1, std::memory_order_relaxed);
        }
    } catch (const Error &) {
        // daemon already gone: the journal must account for us
    }
}

pid_t
spawnServe(const std::string &socket_path, const std::string &journal)
{
    const char *grant = std::getenv("XYLEM_CHAOS_SOLVER_THREADS");
    const pid_t pid = ::fork();
    if (pid == 0) {
        if (grant)
            ::execl(XYLEM_SERVE_BIN, "xylem_serve", "--socket",
                    socket_path.c_str(), "--journal", journal.c_str(),
                    "--jobs", "1", "--queue-capacity", "32", "--quiet",
                    "--solver-threads", grant,
                    static_cast<char *>(nullptr));
        else
            ::execl(XYLEM_SERVE_BIN, "xylem_serve", "--socket",
                    socket_path.c_str(), "--journal", journal.c_str(),
                    "--jobs", "1", "--queue-capacity", "32", "--quiet",
                    static_cast<char *>(nullptr));
        ::_exit(127); // exec failed
    }
    return pid;
}

/** Wait until the daemon accepts connections (or fail the test). */
void
awaitServe(const std::string &socket_path)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < deadline) {
        try {
            service::FdGuard fd = service::connectUnix(socket_path);
            return;
        } catch (const Error &) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
    }
    FAIL() << "daemon never came up on " << socket_path;
}

TEST(ChaosRestartTest, SigkillMidBurstIsAccountedExactlyByTheJournal)
{
    const std::string socket_path = testPath("crash", ".sock");
    const std::string journal_path = testPath("crash", ".jnl");
    ::unlink(journal_path.c_str());

    const pid_t pid = spawnServe(socket_path, journal_path);
    ASSERT_GT(pid, 0);
    awaitServe(socket_path);

    // Distinct grids so nothing dedups or batches: with one worker,
    // six cold solves serialise and the SIGKILL lands mid-burst.
    constexpr int kClients = 6;
    const char *apps[] = {"FFT", "LU", "Radix", "Barnes", "CG", "FT"};
    std::vector<std::string> frames;
    for (int c = 0; c < kClients; ++c)
        frames.push_back(steadyFrame(static_cast<std::uint64_t>(c + 1),
                                     apps[c], 2.0 + 0.1 * c,
                                     40 + 2 * c));
    std::vector<std::string> responses(kClients);
    std::atomic<int> responded{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c)
        threads.emplace_back([&, c] {
            chaosClient(socket_path, frames[static_cast<std::size_t>(c)],
                        responses[static_cast<std::size_t>(c)],
                        responded);
        });

    // Kill the daemon once at least one response proves the burst is
    // in flight. (If the machine is so fast everything finished, the
    // journal accounting below simply shows zero lost.)
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    while (responded.load(std::memory_order_relaxed) < 1 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_GE(responded.load(std::memory_order_relaxed), 1);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFSIGNALED(status));
    for (auto &t : threads)
        t.join();

    // The crash contract: every admitted request is either answered
    // or enumerated as lost -- the scan's books must balance exactly,
    // which also proves "admitted" always hit the journal before its
    // "answered" could.
    const auto recovery = service::RequestJournal::scan(journal_path);
    EXPECT_EQ(recovery.admitted,
              recovery.answered + recovery.lost.size());
    std::set<std::uint64_t> lost_ids;
    for (const auto &lost : recovery.lost) {
        EXPECT_GE(lost.id, 1u);
        EXPECT_LE(lost.id, static_cast<std::uint64_t>(kClients));
        EXPECT_FALSE(lost.scenario.empty());
        lost_ids.insert(lost.id);
    }

    // Restart on the same journal: the new incarnation reports the
    // previous epoch's losses through the health verb, then serves
    // replays whose payloads are bit-identical to the pre-crash
    // responses.
    const pid_t pid2 = spawnServe(socket_path, journal_path);
    ASSERT_GT(pid2, 0);
    awaitServe(socket_path);
    const JsonValue health = service::parseJson(
        roundTrip(socket_path, "{\"id\":99,\"query\":\"health\"}"));
    EXPECT_TRUE(health.find("ok")->boolean());
    EXPECT_EQ(health.find("journalLostPrevious")->number(),
              static_cast<double>(recovery.lost.size()));
    for (int c = 0; c < kClients; ++c) {
        const std::string &text = responses[static_cast<std::size_t>(c)];
        if (text.empty())
            continue; // lost to the crash; enumerated above
        ASSERT_TRUE(service::parseJson(text).find("ok")->boolean())
            << text;
        const std::string replay = roundTrip(
            socket_path, frames[static_cast<std::size_t>(c)]);
        EXPECT_EQ(payloadPrefix(text), payloadPrefix(replay))
            << "pre-crash response for " << apps[c]
            << " differs from the clean replay";
    }

    // Clean shutdown of the restarted daemon.
    ASSERT_EQ(::kill(pid2, SIGTERM), 0);
    ASSERT_EQ(::waitpid(pid2, &status, 0), pid2);
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    ::unlink(journal_path.c_str());
}

} // namespace
