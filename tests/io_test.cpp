/**
 * @file
 * Tests for the text I/O helpers: the SystemConfig key=value format
 * and the gem5-style statistics report.
 */

#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "cpu/multicore.hpp"
#include "cpu/stats_report.hpp"
#include "workloads/profile.hpp"
#include "xylem/config_io.hpp"

namespace xylem::core {
namespace {

TEST(ConfigIo, ParsesAllKeys)
{
    std::istringstream in(R"(
# a comment
scheme = banke
numDramDies = 12
dieThicknessUm = 50     # inline comment
gridNx = 40
gridNy = 48
d2dLambdaOverride = 2.5
ambientCelsius = 42
convectionResistance = 0.2
solverTolerance = 1e-7
solver = mg
precond = line
instsPerThread = 123456
warmupInsts = 1000
seed = 99
tjMaxProc = 97
tMaxDram = 93
electroThermalIterations = 3
leakageTempCoefficient = 0.015
)");
    const SystemConfig cfg = parseSystemConfig(in);
    EXPECT_EQ(cfg.stackSpec.scheme, stack::Scheme::BankE);
    EXPECT_EQ(cfg.stackSpec.numDramDies, 12);
    EXPECT_DOUBLE_EQ(cfg.stackSpec.dieThickness, 50e-6);
    EXPECT_EQ(cfg.stackSpec.gridNx, 40u);
    EXPECT_EQ(cfg.stackSpec.gridNy, 48u);
    EXPECT_DOUBLE_EQ(cfg.stackSpec.d2dLambdaOverride, 2.5);
    EXPECT_DOUBLE_EQ(cfg.solver.ambientCelsius, 42.0);
    EXPECT_DOUBLE_EQ(cfg.solver.convectionResistance, 0.2);
    EXPECT_DOUBLE_EQ(cfg.solver.tolerance, 1e-7);
    EXPECT_EQ(cfg.solver.kind, thermal::SolverKind::Multigrid);
    EXPECT_EQ(cfg.solver.preconditioner,
              thermal::Preconditioner::VerticalLine);
    EXPECT_EQ(cfg.cpu.instsPerThread, 123456u);
    EXPECT_EQ(cfg.cpu.warmupInsts, 1000u);
    EXPECT_EQ(cfg.cpu.seed, 99u);
    EXPECT_DOUBLE_EQ(cfg.tjMaxProc, 97.0);
    EXPECT_DOUBLE_EQ(cfg.tMaxDram, 93.0);
    EXPECT_EQ(cfg.electroThermalIterations, 3);
    EXPECT_DOUBLE_EQ(cfg.leakage.tempCoefficient, 0.015);
}

TEST(ConfigIo, EmptyInputGivesDefaults)
{
    std::istringstream in("   \n# only comments\n");
    const SystemConfig cfg = parseSystemConfig(in);
    EXPECT_EQ(cfg.stackSpec.scheme, stack::Scheme::Base);
    EXPECT_EQ(cfg.stackSpec.numDramDies, 8);
}

TEST(ConfigIo, RejectsUnknownKey)
{
    std::istringstream in("nonsense = 1\n");
    EXPECT_THROW(parseSystemConfig(in), FatalError);
}

TEST(ConfigIo, RejectsMalformedLines)
{
    {
        std::istringstream in("scheme banke\n");
        EXPECT_THROW(parseSystemConfig(in), FatalError);
    }
    {
        std::istringstream in("gridNx = twelve\n");
        EXPECT_THROW(parseSystemConfig(in), FatalError);
    }
    {
        std::istringstream in("gridNx = 12.5\n");
        EXPECT_THROW(parseSystemConfig(in), FatalError);
    }
    {
        std::istringstream in("gridNx =\n");
        EXPECT_THROW(parseSystemConfig(in), FatalError);
    }
    {
        std::istringstream in("scheme = hotdog\n");
        EXPECT_THROW(parseSystemConfig(in), FatalError);
    }
}

TEST(ConfigIo, ErrorMessagesCarryLineNumbers)
{
    std::istringstream in("scheme = bank\n\nbad line here\n");
    try {
        parseSystemConfig(in);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    }
}

TEST(ConfigIo, FormatParseRoundTrip)
{
    SystemConfig cfg;
    cfg.stackSpec.scheme = stack::Scheme::IsoCount;
    cfg.stackSpec.numDramDies = 4;
    cfg.solver.ambientCelsius = 37.5;
    cfg.solver.kind = thermal::SolverKind::Multigrid;
    cfg.solver.preconditioner = thermal::Preconditioner::Jacobi;
    cfg.cpu.seed = 777;
    cfg.electroThermalIterations = 2;
    std::istringstream in(formatSystemConfig(cfg));
    const SystemConfig back = parseSystemConfig(in);
    EXPECT_EQ(back.stackSpec.scheme, stack::Scheme::IsoCount);
    EXPECT_EQ(back.stackSpec.numDramDies, 4);
    EXPECT_DOUBLE_EQ(back.solver.ambientCelsius, 37.5);
    EXPECT_EQ(back.solver.kind, thermal::SolverKind::Multigrid);
    EXPECT_EQ(back.solver.preconditioner,
              thermal::Preconditioner::Jacobi);
    EXPECT_EQ(back.cpu.seed, 777u);
    EXPECT_EQ(back.electroThermalIterations, 2);
}

TEST(ConfigIo, SolverSelectionRoundTripsEveryCombination)
{
    for (const auto kind :
         {thermal::SolverKind::CG, thermal::SolverKind::Multigrid}) {
        for (const auto pre : {thermal::Preconditioner::Jacobi,
                               thermal::Preconditioner::VerticalLine,
                               thermal::Preconditioner::Multigrid}) {
            SystemConfig cfg;
            cfg.solver.kind = kind;
            cfg.solver.preconditioner = pre;
            std::istringstream in(formatSystemConfig(cfg));
            const SystemConfig back = parseSystemConfig(in);
            EXPECT_EQ(back.solver.kind, kind)
                << thermal::toString(kind) << "/"
                << thermal::toString(pre);
            EXPECT_EQ(back.solver.preconditioner, pre)
                << thermal::toString(kind) << "/"
                << thermal::toString(pre);
        }
    }
}

TEST(ConfigIo, InvalidSolverChoiceIsATypedError)
{
    // Unlike the fatal() paths, a bad solver/precond choice must
    // surface as a recoverable ErrorCode::Config (the service engine
    // forwards it over the wire instead of tearing the daemon down),
    // with the line number and the valid choices in the message.
    {
        std::istringstream in("solver = gauss-seidel\n");
        try {
            parseSystemConfig(in);
            FAIL() << "expected Error";
        } catch (const Error &e) {
            EXPECT_EQ(e.code(), ErrorCode::Config);
            const std::string msg = e.what();
            EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
            EXPECT_NE(msg.find("gauss-seidel"), std::string::npos) << msg;
            EXPECT_NE(msg.find("valid choices: cg, mg"),
                      std::string::npos)
                << msg;
        }
    }
    {
        std::istringstream in("\nprecond = ilu\n");
        try {
            parseSystemConfig(in);
            FAIL() << "expected Error";
        } catch (const Error &e) {
            EXPECT_EQ(e.code(), ErrorCode::Config);
            const std::string msg = e.what();
            EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
            EXPECT_NE(msg.find("valid choices: jacobi, line, mg"),
                      std::string::npos)
                << msg;
        }
    }
}

TEST(ConfigIo, BatchKeysRoundTrip)
{
    SystemConfig cfg;
    cfg.batch.enabled = false;
    cfg.batch.maxRhs = 32;
    std::istringstream in(formatSystemConfig(cfg));
    const SystemConfig back = parseSystemConfig(in);
    EXPECT_FALSE(back.batch.enabled);
    EXPECT_EQ(back.batch.maxRhs, 32);
    // Absent keys keep the batching defaults (on, 16 columns).
    std::istringstream empty("");
    const SystemConfig defaults = parseSystemConfig(empty);
    EXPECT_TRUE(defaults.batch.enabled);
    EXPECT_EQ(defaults.batch.maxRhs, 16);
}

TEST(ConfigIo, InvalidBatchKeysAreTypedErrors)
{
    // batch.* arrives over the service wire inside request configs, so
    // a bad value must come back as a recoverable ErrorCode::Config
    // response — the same contract as solver/precond above.
    const char *bad[] = {
        "batch.enabled = maybe\n",
        "batch.maxRhs = 0\n",
        "batch.maxRhs = -4\n",
        "batch.maxRhs = 2.5\n",
        "batch.maxRhs = 1000\n", // beyond kMaxBatchRhs
    };
    for (const char *text : bad) {
        std::istringstream in(text);
        try {
            parseSystemConfig(in);
            FAIL() << "accepted: " << text;
        } catch (const Error &e) {
            EXPECT_EQ(e.code(), ErrorCode::Config) << text;
            EXPECT_NE(std::string(e.what()).find("line 1"),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST(ConfigIo, MissingFileFails)
{
    EXPECT_THROW(loadSystemConfig("/no/such/file.cfg"), FatalError);
}

TEST(ConfigIo, ShippedConfigsRoundTrip)
{
    // Every .cfg we ship must load, and the format must be a fixed
    // point: format(parse(format(cfg))) == format(cfg). That proves
    // formatting loses nothing the parser can read back.
    namespace fs = std::filesystem;
    std::size_t seen = 0;
    for (const auto &entry : fs::directory_iterator(XYLEM_CONFIGS_DIR)) {
        if (entry.path().extension() != ".cfg")
            continue;
        ++seen;
        const SystemConfig cfg = loadSystemConfig(entry.path().string());
        const std::string text = formatSystemConfig(cfg);
        std::istringstream in(text);
        const SystemConfig back = parseSystemConfig(in);
        EXPECT_EQ(formatSystemConfig(back), text) << entry.path();
        EXPECT_EQ(back.stackSpec.scheme, cfg.stackSpec.scheme)
            << entry.path();
        EXPECT_EQ(back.stackSpec.numDramDies, cfg.stackSpec.numDramDies)
            << entry.path();
        EXPECT_DOUBLE_EQ(back.stackSpec.dieThickness,
                         cfg.stackSpec.dieThickness)
            << entry.path();
        EXPECT_DOUBLE_EQ(back.solver.tolerance, cfg.solver.tolerance)
            << entry.path();
        EXPECT_EQ(back.electroThermalIterations,
                  cfg.electroThermalIterations)
            << entry.path();
    }
    EXPECT_GE(seen, 3u) << "expected the shipped configs under "
                        << XYLEM_CONFIGS_DIR;
}

TEST(ConfigIo, RejectsMoreMalformedInput)
{
    {
        // A second '=' becomes trailing junk in the value.
        std::istringstream in("gridNx = 12 = 13\n");
        EXPECT_THROW(parseSystemConfig(in), FatalError);
    }
    {
        // Counts must be non-negative integers.
        std::istringstream in("numDramDies = -2\n");
        EXPECT_THROW(parseSystemConfig(in), FatalError);
    }
    {
        // A missing key is an unknown (empty) key, not a crash.
        std::istringstream in("= 5\n");
        EXPECT_THROW(parseSystemConfig(in), FatalError);
    }
    {
        // Comments may hide the value but not excuse the key.
        std::istringstream in("gridNx = # gone\n");
        EXPECT_THROW(parseSystemConfig(in), FatalError);
    }
    {
        std::istringstream in("solverTolerance = 1e\n");
        EXPECT_THROW(parseSystemConfig(in), FatalError);
    }
}

// ---------------------------------------------------------------------
// Stats report
// ---------------------------------------------------------------------

TEST(StatsReport, ContainsTheHeadlineNumbers)
{
    cpu::MulticoreConfig cfg;
    cfg.instsPerThread = 20000;
    cfg.warmupInsts = 30000;
    const auto &app = workloads::profileByName("FFT");
    const cpu::SimResult r =
        cpu::simulate(cfg, {{&app, 0}, {&app, 3}});

    std::ostringstream os;
    cpu::printReport(os, r);
    const std::string s = os.str();
    EXPECT_NE(s.find("sim.seconds"), std::string::npos);
    EXPECT_NE(s.find("core 0"), std::string::npos);
    EXPECT_NE(s.find("core 1 (idle)"), std::string::npos);
    EXPECT_NE(s.find("l2.mpki"), std::string::npos);
    EXPECT_NE(s.find("dram.rowHitRate"), std::string::npos);
    EXPECT_NE(s.find("dram.die0.accesses"), std::string::npos);
}

TEST(StatsReport, SectionsCanBeDisabled)
{
    cpu::MulticoreConfig cfg;
    cfg.instsPerThread = 10000;
    cfg.warmupInsts = 10000;
    const auto &app = workloads::profileByName("FFT");
    const cpu::SimResult r = cpu::simulate(cfg, {{&app, 0}});

    cpu::ReportOptions opts;
    opts.perCore = false;
    opts.dram = false;
    std::ostringstream os;
    cpu::printReport(os, r, opts);
    const std::string s = os.str();
    EXPECT_EQ(s.find("core 0"), std::string::npos);
    EXPECT_EQ(s.find("dram.requests"), std::string::npos);
    EXPECT_NE(s.find("sim.ips"), std::string::npos);
}

} // namespace
} // namespace xylem::core
