/**
 * @file
 * Tests for the Wide I/O DRAM model: address decoding, bank timing,
 * channel contention, refresh and energy accounting.
 */

#include <set>

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "dram/wideio.hpp"

namespace xylem::dram {
namespace {

DramConfig
config(int dies = 8)
{
    DramConfig cfg;
    cfg.geometry.numDies = dies;
    return cfg;
}

// ---------------------------------------------------------------------
// Address decoding
// ---------------------------------------------------------------------

TEST(Decode, FieldsAreInRange)
{
    const Geometry g = config().geometry;
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const Address a = decodeAddress(g, rng());
        EXPECT_GE(a.channel, 0);
        EXPECT_LT(a.channel, g.channels);
        EXPECT_GE(a.die, 0);
        EXPECT_LT(a.die, g.numDies);
        EXPECT_GE(a.bank, 0);
        EXPECT_LT(a.bank, g.banksPerRank);
        EXPECT_GE(a.column, 0);
        EXPECT_LT(a.column, g.linesPerPage());
    }
}

TEST(Decode, LineOffsetIsIgnored)
{
    const Geometry g = config().geometry;
    const Address a = decodeAddress(g, 0x12340);
    const Address b = decodeAddress(g, 0x1237F);
    EXPECT_EQ(a.channel, b.channel);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(a.column, b.column);
}

TEST(Decode, ConsecutiveLinesInterleaveChannels)
{
    const Geometry g = config().geometry;
    std::set<int> channels;
    for (int i = 0; i < 4; ++i)
        channels.insert(decodeAddress(g, i * 64ull).channel);
    EXPECT_EQ(channels.size(), 4u);
}

TEST(Decode, SupportsNonPowerOfTwoDieCounts)
{
    const Geometry g = config(12).geometry;
    std::set<int> dies;
    Rng rng(5);
    for (int i = 0; i < 20000; ++i)
        dies.insert(decodeAddress(g, rng() & ((1ull << 34) - 1)).die);
    EXPECT_EQ(dies.size(), 12u);
}

TEST(RefreshRate, ScalesWithTemperatureFactor)
{
    const Timing t;
    EXPECT_NEAR(refreshRate(t, 1.0), 1e9 / 7800.0, 1.0);
    EXPECT_NEAR(refreshRate(t, 0.5), 2e9 / 7800.0, 1.0);
    EXPECT_THROW(refreshRate(t, 0.0), PanicError);
}

// ---------------------------------------------------------------------
// Timing
// ---------------------------------------------------------------------

TEST(Timing, IdleLatencyIsAbout100CoreCycles)
{
    // Table 3: "DRAM access ≈ 100 cycles RT (idle)" at 2.4 GHz.
    WideIoDram dram(config());
    const double cycles = dram.idleLatency() * 2.4;
    EXPECT_GT(cycles, 80.0);
    EXPECT_LT(cycles, 130.0);
}

TEST(Timing, FirstAccessPaysActivate)
{
    WideIoDram dram(config());
    const double done = dram.access(0.0, 0x1000, false);
    const auto &t = dram.config().timing;
    EXPECT_NEAR(done, t.tMC + t.tRCD + t.tCL + t.tBURST, 1e-9);
}

TEST(Timing, RowHitIsFasterThanRowMiss)
{
    WideIoDram dram(config());
    const Geometry g = config().geometry;
    // Two addresses in the same row: the column bits sit directly
    // above the channel+bank bits, so a 16-line stride stays in the
    // row.
    const std::uint64_t a = 0;
    const std::uint64_t b = 16 * 64;
    ASSERT_EQ(decodeAddress(g, a).row, decodeAddress(g, b).row);
    ASSERT_EQ(decodeAddress(g, a).bank, decodeAddress(g, b).bank);
    ASSERT_EQ(decodeAddress(g, a).die, decodeAddress(g, b).die);

    const double t1 = dram.access(0.0, a, false);
    const double t2 = dram.access(1000.0, b, false);      // row hit
    // Same bank/die, different row -> miss with precharge.
    const std::uint64_t c = 1ull << 30;
    ASSERT_EQ(decodeAddress(g, c).bank, decodeAddress(g, a).bank);
    ASSERT_NE(decodeAddress(g, c).row, decodeAddress(g, a).row);
    const double t3 = dram.access(2000.0, c, false);      // row miss

    const double hit_latency = t2 - 1000.0;
    const double miss_latency = t3 - 2000.0;
    EXPECT_LT(hit_latency, miss_latency);
    EXPECT_GT(miss_latency, t1); // precharge adds over an empty bank
}

TEST(Timing, BankConflictSerialises)
{
    WideIoDram dram(config());
    const Geometry g = config().geometry;
    const std::uint64_t a = 0;
    const std::uint64_t c = 1ull << 30; // same bank, other row
    ASSERT_EQ(decodeAddress(g, a).die, decodeAddress(g, c).die);
    const double t1 = dram.access(0.0, a, false);
    const double t2 = dram.access(0.0, c, false);
    EXPECT_GT(t2, t1);
    // Requests on different channels proceed fully in parallel.
    WideIoDram dram2(config());
    const double u1 = dram2.access(0.0, 0, false);
    const double u2 = dram2.access(0.0, 64, false);
    EXPECT_NEAR(u1, u2, 1e-9);
}

TEST(Timing, ChannelDataBusSerialisesBursts)
{
    WideIoDram dram(config());
    const Geometry g = config().geometry;
    // Same channel, different banks: data transfers share the bus.
    const std::uint64_t a = 0;
    const std::uint64_t b = 64 * 4; // next bank, same channel
    ASSERT_EQ(decodeAddress(g, a).channel, decodeAddress(g, b).channel);
    ASSERT_NE(decodeAddress(g, a).bank, decodeAddress(g, b).bank);
    const double t1 = dram.access(0.0, a, false);
    const double t2 = dram.access(0.0, b, false);
    EXPECT_GE(t2, t1 + dram.config().timing.tBURST - 1e-9);
}

TEST(Timing, WriteRecoveryDelaysTheNextAccess)
{
    DramConfig cfg = config();
    WideIoDram dram(cfg);
    dram.access(0.0, 0, true);
    const double after_write = dram.access(0.1, 1ull << 30, false);
    WideIoDram dram2(cfg);
    dram2.access(0.0, 0, false);
    const double after_read = dram2.access(0.1, 1ull << 30, false);
    EXPECT_GT(after_write, after_read);
}

TEST(Timing, SequentialStreamHasHighRowHitRate)
{
    WideIoDram dram(config());
    double t = 0.0;
    for (int i = 0; i < 4096; ++i)
        t = dram.access(t + 5.0, static_cast<std::uint64_t>(i) * 64, false);
    EXPECT_GT(dram.stats().rowHitRate(), 0.8);
}

TEST(Timing, RandomStreamHasLowRowHitRate)
{
    WideIoDram dram(config());
    Rng rng(9);
    double t = 0.0;
    for (int i = 0; i < 4096; ++i) {
        t = dram.access(t + 5.0, rng.below(1ull << 33) & ~63ull, false);
    }
    EXPECT_LT(dram.stats().rowHitRate(), 0.2);
}

// ---------------------------------------------------------------------
// Refresh
// ---------------------------------------------------------------------

TEST(Refresh, OpsAccumulateOverTime)
{
    WideIoDram dram(config());
    // Touch one rank late: all elapsed refresh intervals are applied.
    dram.access(100000.0, 0, false);
    // 100 µs / 7.8 µs ≈ 12 refreshes for that rank.
    EXPECT_GE(dram.stats().refreshOps, 12u);
    EXPECT_LE(dram.stats().refreshOps, 14u);
}

TEST(Refresh, DoubledRateBelowScaleOne)
{
    DramConfig cfg = config();
    cfg.refreshScale = 0.5; // above 85 °C, JEDEC halves tREFI
    WideIoDram dram(cfg);
    dram.access(100000.0, 0, false);
    EXPECT_GE(dram.stats().refreshOps, 25u);
}

TEST(Refresh, BlocksTheBankAndClosesTheRow)
{
    WideIoDram dram(config());
    const auto &t = dram.config().timing;
    dram.access(t.tREFI - 200.0, 0, false);
    // Right after the refresh boundary the bank must wait out tRFC
    // and re-activate (the refresh closed the row).
    const double done = dram.access(t.tREFI + 1.0, 0, false);
    EXPECT_GT(done, t.tREFI + t.tRFC);
    EXPECT_EQ(dram.stats().dies[0].banks[0].activates, 2u);
}

// ---------------------------------------------------------------------
// Statistics and energy
// ---------------------------------------------------------------------

TEST(Stats, CountersTrackRequests)
{
    WideIoDram dram(config());
    dram.access(0.0, 0, false);
    dram.access(100.0, 16 * 64, true);  // same row: hit write
    dram.access(2000.0, 1ull << 30, false);
    const DramStats &s = dram.stats();
    EXPECT_EQ(s.requests, 3u);
    std::uint64_t reads = 0, writes = 0, acts = 0, hits = 0;
    for (const auto &die : s.dies) {
        for (const auto &b : die.banks) {
            reads += b.reads;
            writes += b.writes;
            acts += b.activates;
            hits += b.rowHits;
        }
    }
    EXPECT_EQ(reads, 2u);
    EXPECT_EQ(writes, 1u);
    EXPECT_EQ(acts, 2u);
    EXPECT_EQ(hits, 1u);
    EXPECT_NEAR(s.rowHitRate(), 1.0 / 3.0, 1e-12);
}

TEST(Stats, PerDieAttribution)
{
    WideIoDram dram(config(4));
    const Geometry g = config(4).geometry;
    std::uint64_t addr = 0;
    while (decodeAddress(g, addr).die != 2)
        addr += 64;
    dram.access(0.0, addr, false);
    EXPECT_EQ(dram.stats().dies[2].totalAccesses(), 1u);
    EXPECT_EQ(dram.stats().dies[0].totalAccesses(), 0u);
}

TEST(Stats, ResetKeepsDeviceState)
{
    WideIoDram dram(config());
    dram.access(0.0, 0, false);
    dram.resetStats();
    EXPECT_EQ(dram.stats().requests, 0u);
    EXPECT_EQ(dram.stats().dies.size(), 8u);
    // The row is still open: the next access is a row hit.
    dram.access(1000.0, 16 * 64, false);
    EXPECT_EQ(dram.stats().rowHitRate(), 1.0);
}

TEST(Energy, BackgroundDominatesWhenIdle)
{
    WideIoDram dram(config());
    const double joules = dram.energyJoules(1e9); // one second
    const auto &e = dram.config().energy;
    EXPECT_NEAR(joules, e.backgroundPerDie * 8, 1e-9);
    EXPECT_NEAR(dram.averagePower(1e9), e.backgroundPerDie * 8, 1e-9);
}

TEST(Energy, AccessesAddUp)
{
    DramConfig cfg = config();
    WideIoDram dram(cfg);
    dram.access(0.0, 0, false);          // activate + read
    dram.access(100.0, 16 * 64, false);  // row-hit read
    dram.access(200.0, 32 * 64, true);   // row-hit write
    const double joules = dram.energyJoules(0.0);
    EXPECT_NEAR(joules,
                cfg.energy.actPre + 2 * cfg.energy.read + cfg.energy.write,
                1e-12);
}

TEST(Energy, AveragePowerRejectsZeroTime)
{
    WideIoDram dram(config());
    EXPECT_THROW(dram.averagePower(0.0), PanicError);
}

TEST(Construction, RejectsBadGeometry)
{
    DramConfig cfg = config();
    cfg.geometry.channels = 0;
    EXPECT_THROW(WideIoDram{cfg}, PanicError);
}

} // namespace
} // namespace xylem::dram
