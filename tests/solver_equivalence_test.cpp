/**
 * @file
 * Equivalence suite for the optimised solver hot path: the fused
 * gather mat-vec against the dense assembly, the cached line-
 * preconditioner factorisation against a naive per-application Thomas
 * reference, threaded solves against serial ones (bit-identical, by
 * design of the fixed-order block reductions), caller-provided
 * workspaces against the thread-local default, and concurrent solves
 * sharing one GridModel (the ConcurrentSolver* suites also run under
 * the ThreadSanitizer CI job).
 */

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "runtime/metrics.hpp"
#include "stack/stack.hpp"
#include "thermal/grid_model.hpp"
#include "thermal/mg/multigrid.hpp"
#include "verify/dense_solver.hpp"
#include "verify/scenario.hpp"

namespace xylem::thermal {
namespace {

using verify::buildPowerMap;
using verify::randomScenario;
using verify::RandomScenario;

/** Max |a - b| over two equally sized node vectors. */
double
maxAbsDiff(const std::vector<double> &a, const std::vector<double> &b)
{
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

/** A random node vector with entries in [-1, 1]. */
std::vector<double>
randomVector(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> v(n);
    for (auto &x : v)
        x = rng.uniform(-1.0, 1.0);
    return v;
}

TEST(SolverEquivalence, FusedApplyMatchesDenseMatVec)
{
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        const RandomScenario sc = randomScenario(seed);
        const auto stk = stack::buildStack(sc.spec);
        const GridModel model(stk, sc.solver);
        const std::size_t n = model.numNodes();

        // With and without an extra diagonal (the transient C/Δt
        // shift goes through the same fused kernel).
        std::vector<double> extra(n);
        {
            Rng rng(seed * 31 + 7);
            for (auto &e : extra)
                e = rng.uniform(0.0, 50.0);
        }
        const std::vector<double> *variants[] = {nullptr, &extra};
        for (const std::vector<double> *ed : variants) {
            const std::vector<double> x = randomVector(n, seed + 1000);
            const std::vector<double> dense = model.denseMatrix(ed);
            std::vector<double> y_fused, y_dense(n);
            model.apply(x, y_fused, ed);
            double scale = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                double acc = 0.0;
                const double *row = dense.data() + i * n;
                for (std::size_t j = 0; j < n; ++j)
                    acc += row[j] * x[j];
                y_dense[i] = acc;
                scale = std::max(scale, std::abs(acc));
            }
            EXPECT_LT(maxAbsDiff(y_fused, y_dense), 1e-9 * scale)
                << "seed " << seed << (ed ? " with" : " without")
                << " extra diagonal";
        }
    }
}

/**
 * The pre-refactor preconditioner, kept verbatim as the reference:
 * one Thomas factorisation + solve per application, reading the
 * tridiagonal straight out of the dense assembly so it shares no code
 * with the cached implementation.
 */
std::vector<double>
naiveLinePrecond(const GridModel &model, const std::vector<double> &dense,
                 const std::vector<double> &r)
{
    const std::size_t n = model.numNodes();
    const std::size_t L = model.numLayers();
    const std::size_t cells = model.cellsPerLayer();
    std::vector<double> z(n);
    std::vector<double> cp(L), dp(L);
    for (std::size_t c = 0; c < cells; ++c) {
        auto node = [&](std::size_t l) { return l * cells + c; };
        auto diag = [&](std::size_t l) {
            return dense[node(l) * n + node(l)];
        };
        auto off = [&](std::size_t l) { // between layers l and l+1
            return dense[node(l) * n + node(l + 1)];
        };
        double denom = diag(0);
        cp[0] = (L > 1) ? off(0) / denom : 0.0;
        dp[0] = r[node(0)] / denom;
        for (std::size_t l = 1; l < L; ++l) {
            const double o = off(l - 1);
            denom = diag(l) - o * cp[l - 1];
            cp[l] = (l + 1 < L) ? off(l) / denom : 0.0;
            dp[l] = (r[node(l)] - o * dp[l - 1]) / denom;
        }
        z[node(L - 1)] = dp[L - 1];
        for (std::size_t l = L - 1; l-- > 0;)
            z[node(l)] = dp[l] - cp[l] * z[node(l + 1)];
    }
    for (std::size_t i = L * cells; i < n; ++i)
        z[i] = r[i] / dense[i * n + i];
    return z;
}

TEST(SolverEquivalence, CachedLinePreconditionerMatchesNaiveThomas)
{
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        const RandomScenario sc = randomScenario(seed);
        const auto stk = stack::buildStack(sc.spec);
        const GridModel model(stk, sc.solver);
        const std::size_t n = model.numNodes();

        std::vector<double> extra(n);
        {
            Rng rng(seed * 17 + 3);
            for (auto &e : extra)
                e = rng.uniform(0.0, 50.0);
        }
        const std::vector<double> *variants[] = {nullptr, &extra};
        for (const std::vector<double> *ed : variants) {
            const std::vector<double> dense = model.denseMatrix(ed);
            const std::vector<double> r = randomVector(n, seed + 2000);
            const std::vector<double> ref =
                naiveLinePrecond(model, dense, r);
            std::vector<double> z;
            model.applyLinePreconditioner(r, z, ed);
            double scale = 0.0;
            for (const double v : ref)
                scale = std::max(scale, std::abs(v));
            EXPECT_LT(maxAbsDiff(z, ref), 1e-12 * std::max(scale, 1.0))
                << "seed " << seed << (ed ? " with" : " without")
                << " extra diagonal";
        }
    }
}

/** Cold + warm steady solves and one transient step for one option set. */
struct SolveOutputs
{
    TemperatureField cold, warm, transient;
    SolveStats coldStats, warmStats, transientStats;
};

SolveOutputs
runAllSolves(const stack::BuiltStack &stk, const RandomScenario &sc,
             SolverOptions opts, SolverWorkspace *workspace = nullptr)
{
    const GridModel model(stk, opts);
    const auto power = buildPowerMap(stk, sc);
    SolveOutputs out{model.ambientField(), model.ambientField(),
                     model.ambientField(), {}, {}, {}};
    out.cold = model.solveSteady(power, &out.coldStats, nullptr, workspace);
    // Perturb the warm start so CG has real work left to do.
    TemperatureField start = out.cold;
    for (auto &v : start.nodes())
        v += 0.5;
    out.warm =
        model.solveSteady(power, &out.warmStats, &start, workspace);
    out.transient = model.stepTransient(out.warm, power, 1e-3,
                                        &out.transientStats, workspace);
    return out;
}

void
expectBitIdentical(const TemperatureField &a, const TemperatureField &b,
                   const char *what)
{
    ASSERT_EQ(a.numNodes(), b.numNodes());
    for (std::size_t i = 0; i < a.numNodes(); ++i)
        ASSERT_EQ(a.nodes()[i], b.nodes()[i])
            << what << ": node " << i << " differs";
}

/**
 * The determinism guarantee of the tentpole: the fixed-order block
 * reductions and fixed-tile partitions make a threaded solve
 * bit-identical to the serial one — at EVERY thread count, for every
 * solve mode and all three preconditioners.
 */
TEST(SolverDeterminism, ThreadedSolvesBitIdenticalToSerial)
{
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
        const RandomScenario sc = randomScenario(seed);
        const auto stk = stack::buildStack(sc.spec);
        for (const Preconditioner pre :
             {Preconditioner::Jacobi, Preconditioner::VerticalLine,
              Preconditioner::Multigrid}) {
            SolverOptions serial = sc.solver;
            serial.preconditioner = pre;
            serial.threads = 1;
            const SolveOutputs a = runAllSolves(stk, sc, serial);
            for (const int t : {2, 3, 8}) {
                SolverOptions threaded = serial;
                threaded.threads = t;
                const SolveOutputs b = runAllSolves(stk, sc, threaded);
                EXPECT_EQ(a.coldStats.iterations,
                          b.coldStats.iterations)
                    << "threads " << t;
                EXPECT_EQ(a.warmStats.iterations,
                          b.warmStats.iterations)
                    << "threads " << t;
                EXPECT_EQ(a.transientStats.iterations,
                          b.transientStats.iterations)
                    << "threads " << t;
                expectBitIdentical(a.cold, b.cold, "steady cold");
                expectBitIdentical(a.warm, b.warm, "steady warm");
                expectBitIdentical(a.transient, b.transient,
                                   "transient");
            }
        }
    }
}

/**
 * Same sweep for the standalone multigrid iteration (SolverKind::
 * Multigrid): the V-cycle IS the solver here, so any tile-order slip
 * in the threaded coarse levels would surface directly.
 */
TEST(SolverDeterminism, StandaloneMgThreadSweepBitIdentical)
{
    const RandomScenario base = randomScenario(31);
    const auto stk = stack::buildStack(base.spec);
    SolverOptions opts = base.solver;
    opts.kind = SolverKind::Multigrid;
    opts.preconditioner = Preconditioner::Multigrid;
    opts.threads = 1;
    const SolveOutputs a = runAllSolves(stk, base, opts);
    for (const int t : {2, 3, 8}) {
        SolverOptions threaded = opts;
        threaded.threads = t;
        const SolveOutputs b = runAllSolves(stk, base, threaded);
        EXPECT_EQ(a.coldStats.iterations, b.coldStats.iterations)
            << "threads " << t;
        expectBitIdentical(a.cold, b.cold, "standalone-MG cold");
        expectBitIdentical(a.warm, b.warm, "standalone-MG warm");
        expectBitIdentical(a.transient, b.transient,
                           "standalone-MG transient");
    }
}

/**
 * The batched block solve composes with intra-solve threads: every
 * column of a threaded batch is bit-identical to the single-thread
 * batch, which PR 7's harness already proved identical to solo.
 */
TEST(SolverDeterminism, BatchThreadSweepBitIdentical)
{
    const RandomScenario sc = randomScenario(32);
    const auto stk = stack::buildStack(sc.spec);
    const auto power = buildPowerMap(stk, sc);
    constexpr int kCols = 5;
    std::vector<PowerMap> powers;
    powers.reserve(kCols);
    for (int k = 0; k < kCols; ++k) {
        PowerMap p = power;
        p.deposit(stk.procMetal, stk.grid.extent(), 0.5 + 0.25 * k);
        powers.push_back(std::move(p));
    }
    std::vector<const PowerMap *> ptrs;
    for (const auto &p : powers)
        ptrs.push_back(&p);

    SolverOptions opts = sc.solver;
    opts.preconditioner = Preconditioner::Multigrid;
    opts.threads = 1;
    const GridModel serial_model(stk, opts);
    SolverWorkspace serial_ws;
    std::vector<SolveStats> serial_stats;
    const auto serial_fields = serial_model.solveSteadyBatch(
        ptrs, &serial_stats, nullptr, &serial_ws);
    for (const int t : {2, 3, 8}) {
        SolverOptions threaded = opts;
        threaded.threads = t;
        const GridModel model(stk, threaded);
        SolverWorkspace ws;
        std::vector<SolveStats> stats;
        const auto fields =
            model.solveSteadyBatch(ptrs, &stats, nullptr, &ws);
        ASSERT_EQ(fields.size(), serial_fields.size());
        for (std::size_t k = 0; k < fields.size(); ++k) {
            EXPECT_EQ(stats[k].iterations, serial_stats[k].iterations)
                << "threads " << t << " column " << k;
            expectBitIdentical(fields[k], serial_fields[k],
                               "batched column");
        }
    }
}

/**
 * The coarsest-level Cholesky factor cache: repeated steady solves
 * reuse the factor (counted in solver.mg.factor_reuses), and a
 * mutated extra_diag — a transient step's C/Δt shift — must refresh
 * it rather than answer from the stale factor. Correctness is pinned
 * by the dense reference on every solve.
 */
TEST(MultigridEquivalence, CoarseFactorReusedAndRefreshedOnExtraDiag)
{
    RandomScenario sc = randomScenario(33);
    sc.solver.tolerance = 1e-10;
    sc.solver.kind = SolverKind::CG;
    sc.solver.preconditioner = Preconditioner::Multigrid;
    const auto stk = stack::buildStack(sc.spec);
    const auto power = buildPowerMap(stk, sc);
    const GridModel model(stk, sc.solver);
    ASSERT_NE(model.multigrid(), nullptr);
    const TemperatureField ref =
        verify::referenceSolveSteady(model, power);

    SolverWorkspace ws;
    const auto before = runtime::Metrics::global().snapshot();
    const TemperatureField first =
        model.solveSteady(power, nullptr, nullptr, &ws);
    const TemperatureField second =
        model.solveSteady(power, nullptr, nullptr, &ws);
    const auto after_steady = runtime::Metrics::global().snapshot();
    // Same (absent) extra_diag twice through one workspace: the
    // second prepareSolve must hit the cache.
    EXPECT_GE(after_steady.count("solver.mg.factor_reuses") -
                  before.count("solver.mg.factor_reuses"),
              1u);
    expectBitIdentical(first, second, "repeat steady solve");
    EXPECT_LT(maxAbsDiff(first.nodes(), ref.nodes()), 1e-6);

    // A transient step installs the C/Δt diagonal shift: the key
    // changes, the factor must refresh, and the answer must match the
    // dense reference (a stale steady factor would not).
    const TemperatureField stepped =
        model.stepTransient(ref, power, 1e-3, nullptr, &ws);
    const TemperatureField stepped_ref =
        verify::referenceStepTransient(model, ref, power, 1e-3);
    EXPECT_LT(maxAbsDiff(stepped.nodes(), stepped_ref.nodes()), 1e-6);

    // And a second identical step reuses the transient factor.
    const auto before_repeat = runtime::Metrics::global().snapshot();
    const TemperatureField stepped2 =
        model.stepTransient(ref, power, 1e-3, nullptr, &ws);
    const auto after_repeat = runtime::Metrics::global().snapshot();
    EXPECT_GE(after_repeat.count("solver.mg.factor_reuses") -
                  before_repeat.count("solver.mg.factor_reuses"),
              1u);
    expectBitIdentical(stepped, stepped2, "repeat transient step");

    // Back to steady: the steady key must evict the transient factor
    // (different extra_diag), not serve from it.
    const TemperatureField third =
        model.solveSteady(power, nullptr, nullptr, &ws);
    expectBitIdentical(first, third, "steady after transient");
}

/**
 * Differential coverage for the multigrid subsystem: MG-preconditioned
 * CG and the standalone V-cycle iteration against the dense Cholesky
 * reference (no iterative code shared), cold and warm, over the seeded
 * RandomScenario suite. The 1e-6 K bound matches the verify suite.
 */
TEST(MultigridEquivalence, MgCgMatchesDenseReferenceOnRandomSuite)
{
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        RandomScenario sc = randomScenario(seed);
        sc.solver.tolerance = 1e-10; // tight so 1e-6 K is honest
        sc.solver.kind = SolverKind::CG;
        sc.solver.preconditioner = Preconditioner::Multigrid;
        const auto stk = stack::buildStack(sc.spec);
        const auto power = buildPowerMap(stk, sc);
        const GridModel model(stk, sc.solver);
        const TemperatureField ref =
            verify::referenceSolveSteady(model, power);

        SolveStats cold_stats;
        const TemperatureField cold =
            model.solveSteady(power, &cold_stats);
        EXPECT_LT(maxAbsDiff(cold.nodes(), ref.nodes()), 1e-6)
            << "seed " << seed << " cold";

        TemperatureField guess = ref;
        for (auto &v : guess.nodes())
            v += 0.25;
        SolveStats warm_stats;
        const TemperatureField warm =
            model.solveSteady(power, &warm_stats, &guess);
        EXPECT_LT(maxAbsDiff(warm.nodes(), ref.nodes()), 1e-6)
            << "seed " << seed << " warm";

        const TemperatureField stepped =
            model.stepTransient(ref, power, 1e-3);
        const TemperatureField stepped_ref =
            verify::referenceStepTransient(model, ref, power, 1e-3);
        EXPECT_LT(maxAbsDiff(stepped.nodes(), stepped_ref.nodes()), 1e-6)
            << "seed " << seed << " transient";
    }
}

TEST(MultigridEquivalence, StandaloneMgMatchesDenseReference)
{
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        RandomScenario sc = randomScenario(seed + 40);
        sc.solver.tolerance = 1e-10;
        sc.solver.kind = SolverKind::Multigrid;
        sc.solver.preconditioner = Preconditioner::Multigrid;
        const auto stk = stack::buildStack(sc.spec);
        const auto power = buildPowerMap(stk, sc);
        const GridModel model(stk, sc.solver);
        const TemperatureField ref =
            verify::referenceSolveSteady(model, power);
        SolveStats stats;
        const TemperatureField got = model.solveSteady(power, &stats);
        EXPECT_LT(maxAbsDiff(got.nodes(), ref.nodes()), 1e-6)
            << "seed " << sc.seed;
    }
}

/**
 * Coarsening edge cases. The thin/odd shapes are dense-comparable;
 * 48×48 exceeds the dense node limit, so MG-CG is checked against
 * line-CG at a tight shared tolerance instead (both must land on the
 * same continuous answer well below 1e-6 K apart).
 */
TEST(MultigridEquivalence, OddAndThinGridsMatchDenseReference)
{
    struct Shape
    {
        std::size_t nx, ny;
        int dies;
    };
    const Shape shapes[] = {{8, 8, 1}, {9, 7, 2}, {11, 5, 1}};
    for (const Shape &s : shapes) {
        RandomScenario sc = randomScenario(5);
        sc.spec.gridNx = s.nx;
        sc.spec.gridNy = s.ny;
        sc.spec.numDramDies = s.dies;
        // The scenario's deposits target the die count it was drawn
        // with; clamp them to the overridden (smaller) stack.
        for (auto &d : sc.deposits)
            d.dramDie = std::min(d.dramDie, s.dies - 1);
        sc.solver.tolerance = 1e-10;
        sc.solver.preconditioner = Preconditioner::Multigrid;
        const auto stk = stack::buildStack(sc.spec);
        const auto power = buildPowerMap(stk, sc);
        const GridModel model(stk, sc.solver);
        const TemperatureField ref =
            verify::referenceSolveSteady(model, power);
        const TemperatureField got = model.solveSteady(power);
        EXPECT_LT(maxAbsDiff(got.nodes(), ref.nodes()), 1e-6)
            << s.nx << "x" << s.ny << " dies=" << s.dies;
    }
}

TEST(MultigridEquivalence, FortyEightGridMatchesLineCgAtTightTolerance)
{
    RandomScenario sc = randomScenario(9);
    sc.spec.gridNx = 48;
    sc.spec.gridNy = 48;
    sc.spec.numDramDies = 2;
    for (auto &d : sc.deposits)
        d.dramDie = std::min(d.dramDie, 1);
    sc.solver.tolerance = 1e-11;
    const auto stk = stack::buildStack(sc.spec);
    const auto power = buildPowerMap(stk, sc);

    SolverOptions mg_opts = sc.solver;
    mg_opts.preconditioner = Preconditioner::Multigrid;
    const GridModel mg_model(stk, mg_opts);
    ASSERT_NE(mg_model.multigrid(), nullptr);
    EXPECT_GE(mg_model.multigrid()->numLevels(), 3u);

    SolverOptions line_opts = sc.solver;
    line_opts.preconditioner = Preconditioner::VerticalLine;
    const GridModel line_model(stk, line_opts);

    const TemperatureField a = mg_model.solveSteady(power);
    const TemperatureField b = line_model.solveSteady(power);
    EXPECT_LT(maxAbsDiff(a.nodes(), b.nodes()), 1e-7);
}

TEST(SolverWorkspaceTest, CallerProvidedWorkspaceMatchesThreadLocal)
{
    const RandomScenario sc = randomScenario(11);
    const auto stk = stack::buildStack(sc.spec);
    SolverWorkspace workspace;
    const SolveOutputs own = runAllSolves(stk, sc, sc.solver, &workspace);
    const SolveOutputs tls = runAllSolves(stk, sc, sc.solver);
    expectBitIdentical(own.cold, tls.cold, "steady cold");
    expectBitIdentical(own.warm, tls.warm, "steady warm");
    expectBitIdentical(own.transient, tls.transient, "transient");
}

TEST(SolverWorkspaceTest, ReusesAreCounted)
{
    const RandomScenario sc = randomScenario(12);
    const auto stk = stack::buildStack(sc.spec);
    const GridModel model(stk, sc.solver);
    const auto power = buildPowerMap(stk, sc);

    SolverWorkspace workspace;
    const auto before = runtime::Metrics::global().snapshot();
    model.solveSteady(power, nullptr, nullptr, &workspace); // sizes it
    model.solveSteady(power, nullptr, nullptr, &workspace); // reuses it
    model.stepTransient(model.ambientField(), power, 1e-3, nullptr,
                        &workspace);                        // reuses it
    const auto after = runtime::Metrics::global().snapshot();
    EXPECT_GE(after.count("solver.workspace_reuses") -
                  before.count("solver.workspace_reuses"),
              2u);
}

/**
 * GridModel is immutable after construction and every solve runs out
 * of its own (thread-local) workspace, so concurrent solves on one
 * shared model must be data-race-free and agree exactly with the
 * serial answer. The suite name matches the ThreadSanitizer CI job's
 * 'Concurrent' filter.
 */
TEST(ConcurrentSolverEquivalence, SharedModelThreadLocalWorkspaces)
{
    const RandomScenario sc = randomScenario(21);
    const auto stk = stack::buildStack(sc.spec);
    const GridModel model(stk, sc.solver);
    const auto power = buildPowerMap(stk, sc);
    const TemperatureField expected = model.solveSteady(power);

    constexpr int kThreads = 4;
    std::vector<TemperatureField> got(
        static_cast<std::size_t>(kThreads), model.ambientField());
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            got[static_cast<std::size_t>(t)] = model.solveSteady(power);
        });
    }
    for (auto &t : threads)
        t.join();
    for (int t = 0; t < kThreads; ++t)
        expectBitIdentical(got[static_cast<std::size_t>(t)], expected,
                           "concurrent solve");
}

TEST(ConcurrentSolverEquivalence, ThreadedInnerSolvesFromManyCallers)
{
    // Outer concurrency (many caller threads) combined with inner
    // parallelism (each solve partitions its kernels on its own
    // workspace-owned pool) — the worst-case reentrancy mix.
    const RandomScenario sc = randomScenario(22);
    const auto stk = stack::buildStack(sc.spec);
    SolverOptions opts = sc.solver;
    opts.threads = 2;
    const GridModel model(stk, opts);
    const auto power = buildPowerMap(stk, sc);
    const TemperatureField expected = model.solveSteady(power);

    constexpr int kThreads = 3;
    std::vector<TemperatureField> got(
        static_cast<std::size_t>(kThreads), model.ambientField());
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            SolverWorkspace workspace;
            got[static_cast<std::size_t>(t)] =
                model.solveSteady(power, nullptr, nullptr, &workspace);
        });
    }
    for (auto &t : threads)
        t.join();
    for (int t = 0; t < kThreads; ++t)
        expectBitIdentical(got[static_cast<std::size_t>(t)], expected,
                           "threaded inner solve");
}

} // namespace
} // namespace xylem::thermal
