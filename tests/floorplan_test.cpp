/**
 * @file
 * Tests for the floorplan container and for the Fig. 6 processor die
 * and the Wide I/O DRAM slice builders.
 */

#include <set>

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "floorplan/dram_die.hpp"
#include "floorplan/proc_die.hpp"

namespace xylem::floorplan {
namespace {

// ---------------------------------------------------------------------
// Floorplan container
// ---------------------------------------------------------------------

TEST(Floorplan, AddAndFind)
{
    Floorplan fp("test", geometry::Rect{0, 0, 1, 1});
    fp.add("a", geometry::Rect{0, 0, 0.5, 0.5});
    EXPECT_NE(fp.find("a"), nullptr);
    EXPECT_EQ(fp.find("b"), nullptr);
    EXPECT_EQ(fp.at("a").rect.area(), 0.25);
    EXPECT_THROW(fp.at("b"), FatalError);
}

TEST(Floorplan, RejectsBlocksOutsideExtent)
{
    Floorplan fp("test", geometry::Rect{0, 0, 1, 1});
    EXPECT_THROW(fp.add("big", geometry::Rect{0.5, 0.5, 1.0, 1.0}),
                 PanicError);
    EXPECT_THROW(fp.add("empty", geometry::Rect{0, 0, 0, 1}), PanicError);
}

TEST(Floorplan, CoverageAndOverlap)
{
    Floorplan fp("test", geometry::Rect{0, 0, 1, 1});
    fp.add("a", geometry::Rect{0, 0, 0.5, 1});
    fp.add("b", geometry::Rect{0.5, 0, 0.5, 1});
    EXPECT_NEAR(fp.coverage(), 1.0, 1e-12);
    EXPECT_TRUE(fp.overlapFree());
    fp.add("c", geometry::Rect{0.25, 0.25, 0.5, 0.5});
    EXPECT_FALSE(fp.overlapFree());
}

TEST(Floorplan, WithPrefix)
{
    Floorplan fp("test", geometry::Rect{0, 0, 1, 1});
    fp.add("C1.FPU", geometry::Rect{0, 0, 0.1, 0.1});
    fp.add("C1.ALU", geometry::Rect{0.2, 0, 0.1, 0.1});
    fp.add("C2.FPU", geometry::Rect{0.4, 0, 0.1, 0.1});
    EXPECT_EQ(fp.withPrefix("C1.").size(), 2u);
    EXPECT_EQ(fp.withPrefix("C").size(), 3u);
    EXPECT_EQ(fp.withPrefix("X").size(), 0u);
}

// ---------------------------------------------------------------------
// Unit-kind parsing
// ---------------------------------------------------------------------

TEST(UnitKind, ParsesCoreBlocks)
{
    EXPECT_EQ(unitKindFromBlockName("C1.FPU"), UnitKind::Fpu);
    EXPECT_EQ(unitKindFromBlockName("C8.L1D"), UnitKind::L1D);
    EXPECT_EQ(unitKindFromBlockName("C3.IQ"), UnitKind::IssueQueue);
    EXPECT_EQ(unitKindFromBlockName("C3.IRF"), UnitKind::IntRF);
}

TEST(UnitKind, ParsesUncoreBlocks)
{
    EXPECT_EQ(unitKindFromBlockName("L2_5"), UnitKind::L2);
    EXPECT_EQ(unitKindFromBlockName("MC2"), UnitKind::MemController);
    EXPECT_EQ(unitKindFromBlockName("BUS0"), UnitKind::CoherenceBus);
    EXPECT_EQ(unitKindFromBlockName("TSVBUS"), UnitKind::TsvBus);
}

TEST(UnitKind, RejectsUnknownNames)
{
    EXPECT_THROW(unitKindFromBlockName("garbage"), PanicError);
    EXPECT_THROW(unitKindFromBlockName("C1.WTF"), PanicError);
}

TEST(UnitKind, RoundTripsThroughToString)
{
    for (UnitKind k : {UnitKind::Fetch, UnitKind::BPred, UnitKind::Decode,
                       UnitKind::IssueQueue, UnitKind::Rob, UnitKind::IntRF,
                       UnitKind::FpRF, UnitKind::IntAlu, UnitKind::Fpu,
                       UnitKind::Lsu, UnitKind::L1I, UnitKind::L1D}) {
        EXPECT_EQ(unitKindFromBlockName(std::string("C1.") + toString(k)),
                  k);
    }
}

// ---------------------------------------------------------------------
// Processor die (Fig. 6)
// ---------------------------------------------------------------------

class ProcDieTest : public ::testing::Test
{
  protected:
    ProcDie die = buildProcessorDie();
};

TEST_F(ProcDieTest, DieIs64mm2)
{
    EXPECT_NEAR(die.plan.extent().area(), 64e-6, 1e-9);
}

TEST_F(ProcDieTest, FullCoverageNoOverlap)
{
    EXPECT_NEAR(die.plan.coverage(), 1.0, 1e-6);
    EXPECT_TRUE(die.plan.overlapFree(1e-15));
}

TEST_F(ProcDieTest, HasEightCoresWithElevenBlocksEach)
{
    ASSERT_EQ(die.cores.size(), 8u);
    for (int c = 1; c <= 8; ++c) {
        const auto blocks =
            die.plan.withPrefix("C" + std::to_string(c) + ".");
        EXPECT_EQ(blocks.size(), 12u) << "core " << c;
    }
}

TEST_F(ProcDieTest, InnerAndOuterCoreSets)
{
    EXPECT_EQ(die.innerCores, (std::vector<int>{1, 2, 5, 6}));
    EXPECT_EQ(die.outerCores, (std::vector<int>{0, 3, 4, 7}));
}

TEST_F(ProcDieTest, CoresSitOnTopAndBottomRows)
{
    // Cores 1-4 (idx 0-3) on the top row, 5-8 on the bottom row.
    for (int i = 0; i < 4; ++i) {
        EXPECT_GT(die.cores[i].y, die.plan.extent().h / 2.0);
        EXPECT_LT(die.cores[4 + i].top(), die.plan.extent().h / 2.0);
    }
}

TEST_F(ProcDieTest, LlcSitsInTheCenterBand)
{
    for (int i = 1; i <= 8; ++i) {
        const auto &l2 = die.plan.at("L2_" + std::to_string(i));
        EXPECT_TRUE(die.centerBand.contains(l2.rect)) << "L2_" << i;
    }
}

TEST_F(ProcDieTest, TsvBusIsCentred)
{
    const auto c = die.tsvBus.center();
    EXPECT_NEAR(c.x, die.plan.extent().w / 2.0, 1e-9);
    EXPECT_NEAR(c.y, die.plan.extent().h / 2.0, 1e-9);
}

TEST_F(ProcDieTest, HotUnitsAreAtTheOuterEdge)
{
    // The FPU strip of a top-row core touches the top of its core
    // (only the I/O ring separates it from the die rim); the L1s
    // face the LLC band.
    const auto &fpu1 = die.plan.at("C1.FPU");
    EXPECT_NEAR(fpu1.rect.top(), die.cores[0].top(), 1e-9);
    EXPECT_NEAR(die.cores[0].top(),
                die.plan.extent().h - die.spec.ioRingWidth, 1e-9);
    const auto &fpu5 = die.plan.at("C5.FPU");
    EXPECT_NEAR(fpu5.rect.y, die.cores[4].y, 1e-9);
    const auto &l1d1 = die.plan.at("C1.L1D");
    EXPECT_LT(l1d1.rect.y, fpu1.rect.y);
}

TEST_F(ProcDieTest, IoRingSurroundsTheLogic)
{
    for (const char *name : {"IO.N", "IO.S", "IO.E", "IO.W"})
        EXPECT_NE(die.plan.find(name), nullptr) << name;
    // No core touches the die rim.
    for (const auto &core : die.cores) {
        EXPECT_GT(core.x, 0.0);
        EXPECT_LT(core.right(), die.plan.extent().w);
    }
}

TEST_F(ProcDieTest, FourMemoryControllers)
{
    for (int m = 0; m < 4; ++m)
        EXPECT_NE(die.plan.find("MC" + std::to_string(m)), nullptr);
    EXPECT_EQ(die.plan.find("MC4"), nullptr);
}

TEST_F(ProcDieTest, RejectsUnsupportedCoreCounts)
{
    ProcDieSpec spec;
    spec.numCores = 4;
    EXPECT_THROW(buildProcessorDie(spec), PanicError);
}

TEST_F(ProcDieTest, BlockNamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &b : die.plan.blocks())
        EXPECT_TRUE(names.insert(b.name).second) << b.name;
}

// ---------------------------------------------------------------------
// DRAM slice (Fig. 1 / Fig. 5)
// ---------------------------------------------------------------------

class DramDieTest : public ::testing::Test
{
  protected:
    DramDie die = buildDramDie();
};

TEST_F(DramDieTest, FullCoverageNoOverlap)
{
    EXPECT_NEAR(die.plan.coverage(), 1.0, 1e-6);
    EXPECT_TRUE(die.plan.overlapFree(1e-15));
}

TEST_F(DramDieTest, SixteenBanksFourPerChannel)
{
    ASSERT_EQ(die.banks.size(), 16u);
    for (int ch = 0; ch < 4; ++ch) {
        for (int b = 0; b < 4; ++b) {
            EXPECT_NE(die.plan.find("CH" + std::to_string(ch) + ".B" +
                                    std::to_string(b)),
                      nullptr);
        }
    }
}

TEST_F(DramDieTest, ChannelsOccupyQuadrants)
{
    const double cx = die.plan.extent().w / 2.0;
    const double cy = die.plan.extent().h / 2.0;
    // Channel 0 bottom-left, 1 bottom-right, 2 top-left, 3 top-right.
    EXPECT_LT(die.banks[0].center().x, cx);
    EXPECT_LT(die.banks[0].center().y, cy);
    EXPECT_GT(die.banks[4].center().x, cx);
    EXPECT_LT(die.banks[4].center().y, cy);
    EXPECT_LT(die.banks[8].center().x, cx);
    EXPECT_GT(die.banks[8].center().y, cy);
    EXPECT_GT(die.banks[12].center().x, cx);
    EXPECT_GT(die.banks[12].center().y, cy);
}

TEST_F(DramDieTest, SiteCountsMatchSchemes)
{
    EXPECT_EQ(die.vertexSites.size(), 20u);
    EXPECT_EQ(die.stripeSites.size(), 8u);
    EXPECT_EQ(die.coreSites.size(), 8u);
}

TEST_F(DramDieTest, SitesLieInsideTheDie)
{
    for (const auto &sites :
         {die.vertexSites, die.stripeSites, die.coreSites}) {
        for (const auto &s : sites)
            EXPECT_TRUE(die.plan.extent().contains(s));
    }
}

TEST_F(DramDieTest, NoTtsvSiteInsideABank)
{
    // §4.2: TTSVs go in the peripheral logic, never inside a bank.
    auto check = [&](const std::vector<geometry::Point> &sites) {
        for (const auto &s : sites)
            for (const auto &bank : die.banks)
                EXPECT_FALSE(bank.contains(s))
                    << "site (" << s.x << "," << s.y << ")";
    };
    check(die.vertexSites);
    check(die.stripeSites);
    check(die.coreSites);
}

TEST_F(DramDieTest, StripeSitesLieInTheCenterStripe)
{
    for (const auto &s : die.stripeSites)
        EXPECT_TRUE(die.centerStripe.contains(s));
}

TEST_F(DramDieTest, StripeSitesAvoidTheTsvBus)
{
    // TTSVs (with KOZ) must not collide with the electrical TSV bus.
    const auto koz_bus = die.tsvBus.inflated(60e-6);
    for (const auto &s : die.stripeSites)
        EXPECT_FALSE(koz_bus.contains(s));
}

TEST_F(DramDieTest, TsvBusMatchesProcessorDie)
{
    const ProcDie proc = buildProcessorDie();
    EXPECT_NEAR(die.tsvBus.x, proc.tsvBus.x, 1e-9);
    EXPECT_NEAR(die.tsvBus.y, proc.tsvBus.y, 1e-9);
    EXPECT_NEAR(die.tsvBus.w, proc.tsvBus.w, 1e-9);
    EXPECT_NEAR(die.tsvBus.h, proc.tsvBus.h, 1e-9);
}

TEST_F(DramDieTest, CoreSitesAreAtTheDieEdges)
{
    // The banke additions sit in the edge strips, under the outer
    // (hot) rows of the projected cores.
    for (const auto &s : die.coreSites) {
        EXPECT_TRUE(s.y < 0.3e-3 || s.y > die.plan.extent().h - 0.3e-3);
    }
}

TEST_F(DramDieTest, SitesDoNotCollideWithEachOther)
{
    std::vector<geometry::Point> all;
    for (const auto &sites :
         {die.vertexSites, die.stripeSites, die.coreSites})
        all.insert(all.end(), sites.begin(), sites.end());
    // TTSV + KOZ is a 120 µm square: centres must be >= 120 µm apart
    // (the paired stripe sites are exactly at that limit by design).
    for (std::size_t i = 0; i < all.size(); ++i) {
        for (std::size_t j = i + 1; j < all.size(); ++j) {
            EXPECT_GE(geometry::distance(all[i], all[j]), 120e-6 - 1e-9)
                << "sites " << i << " and " << j;
        }
    }
}

} // namespace
} // namespace xylem::floorplan
