/**
 * @file
 * Unit tests for the common module: logging/error handling, the
 * deterministic RNG, statistics helpers and the table printer.
 */

#include <chrono>
#include <cmath>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/task_context.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace xylem {
namespace {

// ---------------------------------------------------------------------
// units
// ---------------------------------------------------------------------

TEST(Units, LengthRatios)
{
    EXPECT_DOUBLE_EQ(units::mm, 1e-3 * units::m);
    EXPECT_DOUBLE_EQ(units::um, 1e-3 * units::mm);
    EXPECT_DOUBLE_EQ(units::cm, 10.0 * units::mm);
    EXPECT_DOUBLE_EQ(units::mm2, units::mm * units::mm);
}

TEST(Units, TimeAndFrequency)
{
    EXPECT_DOUBLE_EQ(units::GHz * units::ns, 1.0);
    EXPECT_DOUBLE_EQ(units::MHz, 1e6);
    EXPECT_DOUBLE_EQ(units::ms, 1e-3);
}

TEST(Units, PaperResistanceConvention)
{
    // 13.33 mm^2K/W in SI is 1.333e-5 m^2K/W.
    EXPECT_NEAR(13.33 * units::mm2KperW, 1.333e-5, 1e-9);
}

// ---------------------------------------------------------------------
// logging
// ---------------------------------------------------------------------

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config value ", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("invariant broken"), PanicError);
}

// ---------------------------------------------------------------------
// error taxonomy
// ---------------------------------------------------------------------

TEST(Error, CarriesCodeMessageAndFormattedWhat)
{
    const Error e(ErrorCode::SolverNonConvergence,
                  "residual 3.2e-4 after 50000 iterations");
    EXPECT_EQ(e.code(), ErrorCode::SolverNonConvergence);
    EXPECT_EQ(e.message(), "residual 3.2e-4 after 50000 iterations");
    EXPECT_STREQ(e.what(), "solver-nonconvergence: residual 3.2e-4 "
                           "after 50000 iterations");
}

TEST(Error, ContextFramesChainIntoWhat)
{
    Error e(ErrorCode::Io, "disk full");
    e.addContext("storing record 'k17'");
    e.addContext("running sweep task 4");
    EXPECT_EQ(e.context().size(), 2u);
    EXPECT_STREQ(e.what(),
                 "io: disk full (while storing record 'k17'; while "
                 "running sweep task 4)");
}

TEST(Error, RaiseStreamsTheMessage)
{
    try {
        raise(ErrorCode::DeadlineExceeded, "task ", 7, " exceeded ", 1.5,
              " s");
        FAIL() << "raise must throw";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::DeadlineExceeded);
        EXPECT_EQ(e.message(), "task 7 exceeded 1.5 s");
    }
}

TEST(Error, RethrowWithContextAppendsOneFrame)
{
    try {
        try {
            raise(ErrorCode::SolverBreakdown, "p'Ap went negative");
        } catch (Error &e) {
            rethrowWithContext(e, "solving steady state");
        }
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::SolverBreakdown);
        ASSERT_EQ(e.context().size(), 1u);
        EXPECT_EQ(e.context()[0], "solving steady state");
    }
}

TEST(Error, IsARuntimeErrorForLegacyCatchSites)
{
    EXPECT_THROW(raise(ErrorCode::Unknown, "anything"),
                 std::runtime_error);
}

TEST(Error, CodeTokensAreStableAndDistinct)
{
    std::set<std::string> tokens;
    for (ErrorCode c :
         {ErrorCode::Unknown, ErrorCode::Config, ErrorCode::Io,
          ErrorCode::SolverNonConvergence, ErrorCode::SolverBreakdown,
          ErrorCode::DeadlineExceeded, ErrorCode::Interrupted,
          ErrorCode::CacheCorrupt, ErrorCode::CacheUnwritable,
          ErrorCode::InjectedFault, ErrorCode::TaskFailed})
        tokens.insert(toString(c));
    EXPECT_EQ(tokens.size(), 11u);
    EXPECT_EQ(std::string(toString(ErrorCode::DeadlineExceeded)),
              "deadline-exceeded");
    EXPECT_EQ(std::string(toString(ErrorCode::InjectedFault)),
              "injected-fault");
}

// ---------------------------------------------------------------------
// task context
// ---------------------------------------------------------------------

TEST(TaskContext, AbsentOutsideAnyManagedTask)
{
    EXPECT_EQ(currentTaskContext(), nullptr);
    EXPECT_NO_THROW(taskCheckpoint());
}

TEST(TaskContext, ScopedInstallAndNestingRestore)
{
    TaskContext outer;
    outer.escalation = 1;
    {
        ScopedTaskContext a(outer);
        ASSERT_EQ(currentTaskContext(), &outer);
        TaskContext inner;
        inner.escalation = 3;
        {
            ScopedTaskContext b(inner);
            EXPECT_EQ(currentTaskContext(), &inner);
        }
        EXPECT_EQ(currentTaskContext(), &outer);
    }
    EXPECT_EQ(currentTaskContext(), nullptr);
}

TEST(TaskContext, EscalationRungPredicatesAreMonotonic)
{
    TaskContext ctx;
    EXPECT_FALSE(ctx.coldStart());
    ctx.escalation = static_cast<int>(Escalation::ColdStart);
    EXPECT_TRUE(ctx.coldStart());
    EXPECT_FALSE(ctx.alternatePreconditioner());
    ctx.escalation = static_cast<int>(Escalation::AlternatePreconditioner);
    EXPECT_TRUE(ctx.coldStart());
    EXPECT_TRUE(ctx.alternatePreconditioner());
    EXPECT_FALSE(ctx.denseSolve());
    ctx.escalation = static_cast<int>(Escalation::DenseSolve);
    EXPECT_TRUE(ctx.denseSolve());
    EXPECT_EQ(kMaxEscalation,
              static_cast<int>(Escalation::DenseSolve));
}

TEST(TaskContext, CheckpointRaisesOncePastTheDeadline)
{
    TaskContext ctx;
    ctx.hasDeadline = true;
    ctx.deadline =
        std::chrono::steady_clock::now() + std::chrono::hours(1);
    ScopedTaskContext scope(ctx);
    EXPECT_NO_THROW(taskCheckpoint());
    ctx.deadline =
        std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
    try {
        taskCheckpoint();
        FAIL() << "expected Error(DeadlineExceeded)";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::DeadlineExceeded);
    }
}

TEST(Logging, FatalMessageContainsArguments)
{
    try {
        fatal("x=", 3, " y=", 4.5);
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("x=3 y=4.5"),
                  std::string::npos);
    }
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(XYLEM_ASSERT(1 + 1 == 2));
}

TEST(Logging, AssertThrowsOnFalseWithLocation)
{
    try {
        XYLEM_ASSERT(false, "extra context");
        FAIL() << "assert did not throw";
    } catch (const PanicError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("false"), std::string::npos);
        EXPECT_NE(what.find("extra context"), std::string::npos);
        EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
    }
}

TEST(Logging, VerboseToggle)
{
    setVerbose(true);
    EXPECT_TRUE(verbose());
    setVerbose(false);
    EXPECT_FALSE(verbose());
}

// ---------------------------------------------------------------------
// rng
// ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a() == b());
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, BelowStaysBelow)
{
    Rng rng(13);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowRejectsZero)
{
    Rng rng(13);
    EXPECT_THROW(rng.below(0), PanicError);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ChanceZeroAndOne)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, NormalMoments)
{
    Rng rng(23);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GeometricMeanMatchesDistribution)
{
    Rng rng(29);
    const double p = 0.25;
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(p));
    // Mean of geometric (counting failures) is (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, GeometricWithPOneIsZero)
{
    Rng rng(31);
    EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, GeometricRejectsBadP)
{
    Rng rng(31);
    EXPECT_THROW(rng.geometric(0.0), PanicError);
    EXPECT_THROW(rng.geometric(1.5), PanicError);
}

TEST(Rng, ForkedStreamsAreIndependent)
{
    Rng parent(41);
    Rng child1 = parent.fork();
    Rng child2 = parent.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (child1() == child2());
    EXPECT_LT(same, 3);
}

// ---------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------

TEST(Stats, MeanOfEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, MeanBasic)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Stats, GeomeanBasic)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, GeomeanRejectsNonPositive)
{
    EXPECT_THROW(geomean({1.0, 0.0}), PanicError);
    EXPECT_THROW(geomean({-1.0}), PanicError);
}

TEST(Stats, MinMax)
{
    EXPECT_DOUBLE_EQ(maxOf({3.0, -1.0, 7.0}), 7.0);
    EXPECT_DOUBLE_EQ(minOf({3.0, -1.0, 7.0}), -1.0);
    EXPECT_THROW(maxOf({}), PanicError);
    EXPECT_THROW(minOf({}), PanicError);
}

TEST(Stats, StddevBasic)
{
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
    EXPECT_NEAR(stddev({2.0, 4.0}), 1.0, 1e-12);
}

TEST(Stats, AccumulatorTracksMinMaxMean)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    acc.add(2.0);
    acc.add(6.0);
    acc.add(-2.0);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
    EXPECT_DOUBLE_EQ(acc.min(), -2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 6.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 6.0);
}

TEST(Stats, AccumulatorEmptyMinMaxThrows)
{
    Accumulator acc;
    EXPECT_THROW(acc.min(), PanicError);
    EXPECT_THROW(acc.max(), PanicError);
}

// ---------------------------------------------------------------------
// table
// ---------------------------------------------------------------------

TEST(Table, RejectsEmptyHeaders)
{
    EXPECT_THROW(Table({}), PanicError);
}

TEST(Table, RejectsMismatchedRow)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"1"}), PanicError);
}

TEST(Table, PrintsAlignedColumns)
{
    Table t({"name", "v"});
    t.addRow({"longer-name", "1"});
    t.addRow({"x", "23"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer-name"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, NumFormatsDecimals)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::num(-1.005, 1), "-1.0");
}

} // namespace
} // namespace xylem
