/**
 * @file
 * Tests for power-map painting: conservation of watts, and that power
 * lands on the right layers and regions.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "xylem/painter.hpp"

namespace xylem::core {
namespace {

stack::BuiltStack
makeStack(int dies = 2)
{
    stack::StackSpec spec;
    spec.numDramDies = dies;
    spec.gridNx = 40;
    spec.gridNy = 40;
    return stack::buildStack(spec);
}

power::ProcPower
makeProcPower()
{
    power::ProcPower p;
    p.coreDynamic.resize(8);
    p.coreLeakage.assign(8, 0.4);
    p.l2Dynamic.assign(8, 0.1);
    p.l2Leakage.assign(8, 0.15);
    p.mcPower.assign(4, 0.2);
    p.busDynamic = 0.3;
    p.uncoreLeakage = 0.5;
    for (auto &d : p.coreDynamic) {
        d.fetch = 0.1;
        d.fpu = 0.3;
        d.alu = 0.2;
        d.l1d = 0.1;
        d.clock = 0.5;
    }
    return p;
}

TEST(Painter, ProcessorPowerIsConserved)
{
    const auto stk = makeStack();
    const power::ProcPower p = makeProcPower();
    thermal::PowerMap map(stk);
    paintProcessorPower(map, stk, p);
    EXPECT_NEAR(map.totalPower(), p.total(), 1e-9);
    EXPECT_NEAR(map.layerPower(stk.procMetal), p.total(), 1e-9);
}

TEST(Painter, ProcessorPowerLandsOnlyOnTheProcMetalLayer)
{
    const auto stk = makeStack();
    thermal::PowerMap map(stk);
    paintProcessorPower(map, stk, makeProcPower());
    for (std::size_t l = 0; l < stk.layers.size(); ++l) {
        if (static_cast<int>(l) != stk.procMetal) {
            EXPECT_DOUBLE_EQ(map.layerPower(static_cast<int>(l)), 0.0);
        }
    }
}

TEST(Painter, CorePowerIsLocalisedToTheCore)
{
    const auto stk = makeStack();
    power::ProcPower p = makeProcPower();
    // Give core 1 (index 0) lots of extra FPU power.
    p.coreDynamic[0].fpu = 5.0;
    thermal::PowerMap map(stk);
    paintProcessorPower(map, stk, p);

    const auto &field = map.layer(stk.procMetal);
    auto power_in = [&](const geometry::Rect &r) {
        double total = 0.0;
        stk.grid.forEachOverlap(
            r, [&](std::size_t ix, std::size_t iy, double f) {
                total += field.at(ix, iy) * f;
            });
        return total;
    };
    const double in_core0 = power_in(stk.procDie.cores[0]);
    const double in_core2 = power_in(stk.procDie.cores[2]);
    EXPECT_GT(in_core0, in_core2 + 4.0);
}

TEST(Painter, FpuBlockIsTheHottestSpotOfItsCore)
{
    const auto stk = makeStack();
    power::ProcPower p = makeProcPower();
    thermal::PowerMap map(stk);
    paintProcessorPower(map, stk, p);
    const auto &field = map.layer(stk.procMetal);
    const auto &fpu = stk.procDie.plan.at("C1.FPU").rect;
    const auto &l1i = stk.procDie.plan.at("C1.L1I").rect;
    std::size_t fx, fy, lx, ly;
    stk.grid.locate(fpu.center(), fx, fy);
    stk.grid.locate(l1i.center(), lx, ly);
    EXPECT_GT(field.at(fx, fy), field.at(lx, ly));
}

TEST(Painter, DramPowerIsConservedPerDie)
{
    const auto stk = makeStack(2);
    cpu::SimResult sim;
    sim.seconds = 1.0;
    sim.dram.dies.resize(2);
    sim.dram.dies[0].banks[3].reads = 1000000;     // CH0.B3
    sim.dram.dies[1].banks[12].activates = 500000; // CH3.B0
    sim.dram.refreshOps = 1000;

    dram::DramConfig cfg;
    cfg.geometry.numDies = 2;
    thermal::PowerMap map(stk);
    paintDramPower(map, stk, sim, cfg);

    const auto &e = cfg.energy;
    const double refresh = 1000 * e.refreshPerOp;
    const double die0_expected =
        1e6 * e.read + e.backgroundPerDie + refresh / 2.0;
    const double die1_expected =
        5e5 * e.actPre + e.backgroundPerDie + refresh / 2.0;
    EXPECT_NEAR(map.layerPower(stk.dramMetal[0]), die0_expected, 1e-9);
    EXPECT_NEAR(map.layerPower(stk.dramMetal[1]), die1_expected, 1e-9);
    EXPECT_DOUBLE_EQ(map.layerPower(stk.procMetal), 0.0);
}

TEST(Painter, BankPowerLandsOnTheBankRect)
{
    const auto stk = makeStack(1);
    cpu::SimResult sim;
    sim.seconds = 1.0;
    sim.dram.dies.resize(1);
    sim.dram.dies[0].banks[0].reads = 10000000; // 40 mJ -> 40 W

    dram::DramConfig cfg;
    cfg.geometry.numDies = 1;
    cfg.energy.backgroundPerDie = 0.0;
    thermal::PowerMap map(stk);
    paintDramPower(map, stk, sim, cfg);

    const auto &field = map.layer(stk.dramMetal[0]);
    const auto &bank = stk.dramDie.banks[0];
    std::size_t bx, by;
    stk.grid.locate(bank.center(), bx, by);
    EXPECT_GT(field.at(bx, by), 0.0);
    // The opposite corner bank got nothing.
    std::size_t ox, oy;
    stk.grid.locate(stk.dramDie.banks[15].center(), ox, oy);
    EXPECT_DOUBLE_EQ(field.at(ox, oy), 0.0);
}

TEST(Painter, MismatchedDieCountsThrow)
{
    const auto stk = makeStack(2);
    cpu::SimResult sim;
    sim.seconds = 1.0;
    sim.dram.dies.resize(4);
    dram::DramConfig cfg;
    thermal::PowerMap map(stk);
    EXPECT_THROW(paintDramPower(map, stk, sim, cfg), PanicError);
}

TEST(Painter, MismatchedCoreCountThrows)
{
    const auto stk = makeStack();
    power::ProcPower p = makeProcPower();
    p.coreDynamic.resize(4);
    thermal::PowerMap map(stk);
    EXPECT_THROW(paintProcessorPower(map, stk, p), PanicError);
}

} // namespace
} // namespace xylem::core
