/**
 * @file
 * Unit and property tests for rectangles, grids and scalar fields.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "geometry/grid.hpp"
#include "geometry/rect.hpp"

namespace xylem::geometry {
namespace {

TEST(Rect, AreaAndCorners)
{
    const Rect r{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(r.area(), 12.0);
    EXPECT_DOUBLE_EQ(r.right(), 4.0);
    EXPECT_DOUBLE_EQ(r.top(), 6.0);
    EXPECT_DOUBLE_EQ(r.center().x, 2.5);
    EXPECT_DOUBLE_EQ(r.center().y, 4.0);
}

TEST(Rect, ContainsPoint)
{
    const Rect r{0, 0, 1, 1};
    EXPECT_TRUE(r.contains(Point{0.5, 0.5}));
    EXPECT_TRUE(r.contains(Point{0.0, 0.0}));   // boundary inclusive
    EXPECT_TRUE(r.contains(Point{1.0, 1.0}));
    EXPECT_FALSE(r.contains(Point{1.1, 0.5}));
    EXPECT_FALSE(r.contains(Point{0.5, -0.1}));
}

TEST(Rect, ContainsRect)
{
    const Rect outer{0, 0, 10, 10};
    EXPECT_TRUE(outer.contains(Rect{1, 1, 2, 2}));
    EXPECT_TRUE(outer.contains(outer));
    EXPECT_FALSE(outer.contains(Rect{9, 9, 2, 2}));
}

TEST(Rect, OverlapsAndIntersection)
{
    const Rect a{0, 0, 2, 2};
    const Rect b{1, 1, 2, 2};
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_DOUBLE_EQ(a.intersectionArea(b), 1.0);
    const Rect i = a.intersection(b);
    EXPECT_DOUBLE_EQ(i.x, 1.0);
    EXPECT_DOUBLE_EQ(i.y, 1.0);
    EXPECT_DOUBLE_EQ(i.area(), 1.0);
}

TEST(Rect, EdgeSharingDoesNotOverlap)
{
    const Rect a{0, 0, 1, 1};
    const Rect b{1, 0, 1, 1};
    EXPECT_FALSE(a.overlaps(b));
    EXPECT_DOUBLE_EQ(a.intersectionArea(b), 0.0);
}

TEST(Rect, DisjointIntersectionIsEmpty)
{
    const Rect a{0, 0, 1, 1};
    const Rect b{5, 5, 1, 1};
    EXPECT_DOUBLE_EQ(a.intersection(b).area(), 0.0);
}

TEST(Rect, Inflated)
{
    const Rect r = Rect{1, 1, 2, 2}.inflated(0.5);
    EXPECT_DOUBLE_EQ(r.x, 0.5);
    EXPECT_DOUBLE_EQ(r.y, 0.5);
    EXPECT_DOUBLE_EQ(r.w, 3.0);
    EXPECT_DOUBLE_EQ(r.h, 3.0);
}

TEST(Rect, IntersectionIsCommutative)
{
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        const Rect a{rng.uniform(0, 5), rng.uniform(0, 5),
                     rng.uniform(0.1, 5), rng.uniform(0.1, 5)};
        const Rect b{rng.uniform(0, 5), rng.uniform(0, 5),
                     rng.uniform(0.1, 5), rng.uniform(0.1, 5)};
        EXPECT_NEAR(a.intersectionArea(b), b.intersectionArea(a), 1e-12);
    }
}

TEST(Point, Distance)
{
    EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
    EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

// ---------------------------------------------------------------------
// Grid2D
// ---------------------------------------------------------------------

TEST(Grid2D, BasicGeometry)
{
    Grid2D g(Rect{0, 0, 8e-3, 8e-3}, 80, 80);
    EXPECT_EQ(g.cells(), 6400u);
    EXPECT_DOUBLE_EQ(g.cellWidth(), 1e-4);
    EXPECT_DOUBLE_EQ(g.cellHeight(), 1e-4);
    EXPECT_NEAR(g.cellArea(), 1e-8, 1e-18);
}

TEST(Grid2D, RejectsDegenerate)
{
    EXPECT_THROW(Grid2D(Rect{0, 0, 1, 1}, 0, 4), PanicError);
    EXPECT_THROW(Grid2D(Rect{0, 0, 0, 1}, 4, 4), PanicError);
}

TEST(Grid2D, IndexLayout)
{
    Grid2D g(Rect{0, 0, 1, 1}, 4, 3);
    EXPECT_EQ(g.index(0, 0), 0u);
    EXPECT_EQ(g.index(3, 0), 3u);
    EXPECT_EQ(g.index(0, 1), 4u);
    EXPECT_EQ(g.index(3, 2), 11u);
    EXPECT_THROW(g.index(4, 0), PanicError);
}

TEST(Grid2D, CellRectTiles)
{
    Grid2D g(Rect{0, 0, 1, 1}, 2, 2);
    const Rect c = g.cellRect(1, 1);
    EXPECT_DOUBLE_EQ(c.x, 0.5);
    EXPECT_DOUBLE_EQ(c.y, 0.5);
    EXPECT_DOUBLE_EQ(c.area(), 0.25);
}

TEST(Grid2D, LocateClampsOutOfRange)
{
    Grid2D g(Rect{0, 0, 1, 1}, 4, 4);
    std::size_t ix, iy;
    g.locate({-1.0, 2.0}, ix, iy);
    EXPECT_EQ(ix, 0u);
    EXPECT_EQ(iy, 3u);
    g.locate({0.6, 0.1}, ix, iy);
    EXPECT_EQ(ix, 2u);
    EXPECT_EQ(iy, 0u);
}

TEST(Grid2D, OverlapFractionsForAlignedRect)
{
    Grid2D g(Rect{0, 0, 1, 1}, 4, 4);
    double total = 0.0;
    int visited = 0;
    g.forEachOverlap(Rect{0.25, 0.25, 0.5, 0.5},
                     [&](std::size_t, std::size_t, double f) {
                         total += f;
                         ++visited;
                         EXPECT_NEAR(f, 1.0, 1e-9);
                     });
    EXPECT_EQ(visited, 4); // exactly the 4 central cells
    EXPECT_NEAR(total, 4.0, 1e-9);
}

TEST(Grid2D, OverlapHandlesPartialCells)
{
    Grid2D g(Rect{0, 0, 1, 1}, 2, 2);
    double covered = 0.0;
    g.forEachOverlap(Rect{0.25, 0.25, 0.5, 0.5},
                     [&](std::size_t, std::size_t, double f) {
                         covered += f * g.cellArea();
                     });
    EXPECT_NEAR(covered, 0.25, 1e-12);
}

TEST(Grid2D, OverlapClipsToExtent)
{
    Grid2D g(Rect{0, 0, 1, 1}, 2, 2);
    double covered = 0.0;
    g.forEachOverlap(Rect{-1.0, -1.0, 1.5, 1.5},
                     [&](std::size_t, std::size_t, double f) {
                         covered += f * g.cellArea();
                     });
    EXPECT_NEAR(covered, 0.25, 1e-12);
}

TEST(Grid2D, OverlapIgnoresDisjointRect)
{
    Grid2D g(Rect{0, 0, 1, 1}, 2, 2);
    int visited = 0;
    g.forEachOverlap(Rect{2, 2, 1, 1},
                     [&](std::size_t, std::size_t, double) { ++visited; });
    EXPECT_EQ(visited, 0);
}

/** Property: overlapped cell area always sums to the clipped area. */
TEST(Grid2D, OverlapAreaConservationProperty)
{
    Rng rng(97);
    Grid2D g(Rect{0, 0, 2, 1}, 16, 8);
    for (int i = 0; i < 300; ++i) {
        const Rect r{rng.uniform(-0.5, 2.0), rng.uniform(-0.5, 1.0),
                     rng.uniform(0.01, 1.5), rng.uniform(0.01, 1.0)};
        double covered = 0.0;
        g.forEachOverlap(r, [&](std::size_t, std::size_t, double f) {
            covered += f * g.cellArea();
        });
        EXPECT_NEAR(covered, r.intersectionArea(g.extent()), 1e-10);
    }
}

// ---------------------------------------------------------------------
// Field2D
// ---------------------------------------------------------------------

TEST(Field2D, FillAndAccess)
{
    Grid2D g(Rect{0, 0, 1, 1}, 4, 4);
    Field2D f(g, 3.0);
    EXPECT_DOUBLE_EQ(f.at(2, 2), 3.0);
    f.at(1, 1) = 5.0;
    EXPECT_DOUBLE_EQ(f.at(1, 1), 5.0);
    f.fill(7.0);
    EXPECT_DOUBLE_EQ(f.at(1, 1), 7.0);
    EXPECT_DOUBLE_EQ(f.sum(), 7.0 * 16);
    EXPECT_DOUBLE_EQ(f.max(), 7.0);
}

TEST(Field2D, PaintBlendsByAreaFraction)
{
    Grid2D g(Rect{0, 0, 1, 1}, 2, 2);
    Field2D f(g, 100.0);
    // Paint the left half of cell (0,0) with 0 -> cell becomes 50.
    f.paint(Rect{0, 0, 0.25, 0.5}, 0.0);
    EXPECT_NEAR(f.at(0, 0), 50.0, 1e-9);
    EXPECT_DOUBLE_EQ(f.at(1, 0), 100.0);
}

TEST(Field2D, PaintFullCellOverwrites)
{
    Grid2D g(Rect{0, 0, 1, 1}, 2, 2);
    Field2D f(g, 1.0);
    f.paint(Rect{0.5, 0.5, 0.5, 0.5}, 9.0);
    EXPECT_NEAR(f.at(1, 1), 9.0, 1e-9);
}

TEST(Field2D, DepositConservesTotal)
{
    Grid2D g(Rect{0, 0, 1, 1}, 8, 8);
    Field2D f(g, 0.0);
    f.deposit(Rect{0.1, 0.1, 0.55, 0.37}, 12.5);
    EXPECT_NEAR(f.sum(), 12.5, 1e-9);
}

TEST(Field2D, DepositClippedRectConservesFullTotal)
{
    Grid2D g(Rect{0, 0, 1, 1}, 8, 8);
    Field2D f(g, 0.0);
    // Half of the rect lies outside the grid: all the power must
    // still land on the field (watts cannot vanish), spread over the
    // clipped part.
    f.deposit(Rect{-0.5, 0.0, 1.0, 1.0}, 10.0);
    EXPECT_NEAR(f.sum(), 10.0, 1e-9);
    // ...and only on the covered columns.
    EXPECT_GT(f.at(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(f.at(7, 0), 0.0);
}

TEST(Field2D, DepositAccumulates)
{
    Grid2D g(Rect{0, 0, 1, 1}, 4, 4);
    Field2D f(g, 0.0);
    f.deposit(Rect{0, 0, 1, 1}, 1.0);
    f.deposit(Rect{0, 0, 0.5, 0.5}, 1.0);
    EXPECT_NEAR(f.sum(), 2.0, 1e-9);
    EXPECT_GT(f.at(0, 0), f.at(3, 3));
}

TEST(Field2D, DepositZeroIsNoop)
{
    Grid2D g(Rect{0, 0, 1, 1}, 4, 4);
    Field2D f(g, 0.0);
    f.deposit(Rect{0, 0, 1, 1}, 0.0);
    EXPECT_DOUBLE_EQ(f.sum(), 0.0);
}

/** Property: painting then measuring reproduces the rule of mixtures. */
TEST(Field2D, PaintConservesWeightedAverageProperty)
{
    Rng rng(31);
    Grid2D g(Rect{0, 0, 1, 1}, 10, 10);
    for (int i = 0; i < 100; ++i) {
        Field2D f(g, 2.0);
        const Rect r{rng.uniform(0, 0.8), rng.uniform(0, 0.8),
                     rng.uniform(0.05, 0.2), rng.uniform(0.05, 0.2)};
        f.paint(r, 10.0);
        const double expected =
            2.0 * (1.0 - r.area()) * 100.0 + 10.0 * r.area() * 100.0;
        EXPECT_NEAR(f.sum(), expected, 1e-6);
    }
}

} // namespace
} // namespace xylem::geometry
