/**
 * @file
 * Tests of the experiment drivers that regenerate the paper's figures,
 * run on the shrunk configuration.
 */

#include <cmath>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "xylem/experiments.hpp"
#include "xylem/sim_cache.hpp"

namespace xylem::core {
namespace {

using stack::Scheme;

ExperimentConfig
tiny()
{
    ExperimentConfig cfg = ExperimentConfig::small();
    cfg.base.cpu.instsPerThread = 60000;
    cfg.base.cpu.warmupInsts = 200000;
    return cfg;
}

TEST(Config, StandardCoversTheWholeSuite)
{
    const ExperimentConfig cfg = ExperimentConfig::standard();
    EXPECT_EQ(cfg.apps.size(), 17u);
    EXPECT_EQ(cfg.frequencies.size(), 4u); // Fig. 7: 2.4/2.8/3.2/3.5
}

TEST(TempSweep, CoversAllCombinations)
{
    const ExperimentConfig cfg = tiny();
    const auto sweep =
        runTemperatureSweep(cfg, {Scheme::Base, Scheme::Bank});
    EXPECT_EQ(sweep.size(),
              cfg.apps.size() * cfg.frequencies.size() * 2);
    for (const auto &e : sweep) {
        EXPECT_GT(e.procHotspotC, 40.0);
        EXPECT_GT(e.procPowerW, 0.0);
        EXPECT_GT(e.dramPowerW, 0.0);
        EXPECT_GT(e.procHotspotC, e.dramBottomHotspotC);
    }
}

TEST(TempSweep, TemperatureIncreasesWithFrequency)
{
    const ExperimentConfig cfg = tiny();
    const auto sweep = runTemperatureSweep(cfg, {Scheme::Base});
    for (const auto &app : cfg.apps) {
        const auto &low = sweepEntry(sweep, app, Scheme::Base, 2.4);
        const auto &high = sweepEntry(sweep, app, Scheme::Base, 3.5);
        EXPECT_GT(high.procHotspotC, low.procHotspotC) << app;
        EXPECT_GT(high.dramBottomHotspotC, low.dramBottomHotspotC) << app;
    }
}

TEST(TempSweep, ComputeAppsHeatUpMoreThanMemoryApps)
{
    // Fig. 7 narrative: LU(NAS) gains ≈30 °C from 2.4 to 3.5 GHz,
    // the memory-bound IS/FT only ≈10 °C.
    const ExperimentConfig cfg = tiny();
    const auto sweep = runTemperatureSweep(cfg, {Scheme::Base});
    const double slope_compute =
        sweepEntry(sweep, "LU(NAS)", Scheme::Base, 3.5).procHotspotC -
        sweepEntry(sweep, "LU(NAS)", Scheme::Base, 2.4).procHotspotC;
    const double slope_memory =
        sweepEntry(sweep, "IS", Scheme::Base, 3.5).procHotspotC -
        sweepEntry(sweep, "IS", Scheme::Base, 2.4).procHotspotC;
    EXPECT_GT(slope_compute, 2.0 * slope_memory);
}

TEST(TempSweep, MeanReductionIsPositiveForXylemSchemes)
{
    const ExperimentConfig cfg = tiny();
    const auto sweep = runTemperatureSweep(
        cfg, {Scheme::Base, Scheme::Bank, Scheme::BankE, Scheme::Prior});
    const double d_bank = meanTempReduction(sweep, Scheme::Bank, 2.4);
    const double d_banke = meanTempReduction(sweep, Scheme::BankE, 2.4);
    const double d_prior = meanTempReduction(sweep, Scheme::Prior, 2.4);
    // The small test configuration has only 4 DRAM dies (half the
    // D2D layers), so the reduction is smaller than at full size.
    EXPECT_GT(d_bank, 0.6);
    EXPECT_GT(d_banke, d_bank); // custom placement beats generic
    EXPECT_LT(d_prior, 0.5);    // TTSVs without shorting do ~nothing
    EXPECT_GE(d_prior, 0.0);
}

TEST(TempSweep, MissingEntryThrows)
{
    const ExperimentConfig cfg = tiny();
    const auto sweep = runTemperatureSweep(cfg, {Scheme::Base});
    EXPECT_THROW(sweepEntry(sweep, "LU(NAS)", Scheme::Bank, 2.4),
                 FatalError);
}

TEST(BoostExperiment, ReportsGainsForXylemSchemes)
{
    const ExperimentConfig cfg = tiny();
    const auto entries =
        runBoostExperiment(cfg, {Scheme::Bank, Scheme::BankE});
    ASSERT_EQ(entries.size(), cfg.apps.size() * 2);
    for (const auto &e : entries) {
        EXPECT_GE(e.freqGainMHz, 0.0) << e.app;
        EXPECT_GE(e.freqGHz, 2.4);
        EXPECT_LE(e.freqGHz, 3.5);
        EXPECT_GE(e.perfGainPct, -1.0) << e.app;
    }
    // banke boosts at least as much as bank for every app.
    for (const auto &app : cfg.apps) {
        double bank_mhz = -1, banke_mhz = -1;
        for (const auto &e : entries) {
            if (e.app != app)
                continue;
            (e.scheme == Scheme::Bank ? bank_mhz : banke_mhz) =
                e.freqGainMHz;
        }
        EXPECT_GE(banke_mhz, bank_mhz) << app;
    }
}

TEST(BoostExperiment, ComputeAppGainsMorePerformance)
{
    const ExperimentConfig cfg = tiny();
    const auto entries = runBoostExperiment(cfg, {Scheme::BankE});
    double compute_gain = 0, memory_gain = 0;
    for (const auto &e : entries) {
        if (e.app == "LU(NAS)")
            compute_gain = e.perfGainPct;
        if (e.app == "IS")
            memory_gain = e.perfGainPct;
    }
    EXPECT_GT(compute_gain, memory_gain);
}

TEST(PlacementExperiment, InsideIsAtLeastAsGoodAsOutside)
{
    // §7.6.1: placing the thermally demanding threads on the inner
    // cores allows an equal or higher die-wide frequency.
    ExperimentConfig cfg = tiny();
    const auto entries =
        runPlacementExperiment(cfg, {Scheme::Base, Scheme::BankE});
    ASSERT_EQ(entries.size(), 2u);
    for (const auto &e : entries) {
        EXPECT_GT(e.outsideGHz, 0.0);
        EXPECT_GE(e.insideGHz, e.outsideGHz - 1e-9)
            << stack::toString(e.scheme);
    }
}

TEST(FreqBoostingExperiment, MultipleIsAtLeastSingle)
{
    ExperimentConfig cfg = tiny();
    const auto entries =
        runFreqBoostingExperiment(cfg, {Scheme::Base, Scheme::BankE});
    ASSERT_EQ(entries.size(), 2u);
    for (const auto &e : entries) {
        EXPECT_GT(e.singleGHz, 0.0);
        EXPECT_GE(e.multipleGHz, e.singleGHz - 1e-9);
    }
}

TEST(MigrationExperiment, ProducesEntriesPerScheme)
{
    ExperimentConfig cfg = tiny();
    cfg.apps = {"LU(NAS)"};
    MigrationOptions opts;
    opts.numPhases = 4;
    opts.stepsPerPhase = 3;
    opts.warmupPhases = 1;
    const auto entries =
        runMigrationExperiment(cfg, {Scheme::Base, Scheme::BankE}, opts);
    ASSERT_EQ(entries.size(), 2u);
    for (const auto &e : entries) {
        EXPECT_GT(e.innerAvgHotspotC, 40.0);
        EXPECT_GT(e.outerAvgHotspotC, 40.0);
    }
}

TEST(ThicknessSweep, ThinnerDiesRunHotter)
{
    // Fig. 18: die thinning inhibits lateral spreading.
    ExperimentConfig cfg = tiny();
    cfg.apps = {"LU(NAS)"};
    const auto entries =
        runThicknessSweep(cfg, {50.0, 100.0, 200.0}, {Scheme::Base});
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_GT(entries[0].avgProcHotspotC, entries[1].avgProcHotspotC);
    EXPECT_GT(entries[1].avgProcHotspotC, entries[2].avgProcHotspotC);
}

TEST(DieCountSweep, MoreMemoryDiesRunHotter)
{
    // Fig. 19: more dies add power and distance to the sink.
    ExperimentConfig cfg = tiny();
    cfg.apps = {"LU(NAS)"};
    const auto entries =
        runDieCountSweep(cfg, {4, 8}, {Scheme::Base});
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_LT(entries[0].avgProcHotspotC, entries[1].avgProcHotspotC);
}

TEST(ParallelRuns, SweepIsByteIdenticalToSerial)
{
    // The runtime contract: jobs=N decomposes into exactly the same
    // independent tasks as jobs=1, so every double matches bit for
    // bit and the order is unchanged.
    ExperimentConfig cfg = tiny();
    cfg.apps = {"LU(NAS)", "IS"};
    clearSimCache();
    cfg.runner.jobs = 1;
    const auto serial =
        runTemperatureSweep(cfg, {Scheme::Base, Scheme::Bank});
    clearSimCache();
    cfg.runner.jobs = 4;
    const auto parallel =
        runTemperatureSweep(cfg, {Scheme::Base, Scheme::Bank});

    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(parallel[i].app, serial[i].app) << i;
        EXPECT_EQ(parallel[i].scheme, serial[i].scheme) << i;
        EXPECT_EQ(parallel[i].freqGHz, serial[i].freqGHz) << i;
        EXPECT_EQ(parallel[i].procHotspotC, serial[i].procHotspotC) << i;
        EXPECT_EQ(parallel[i].dramBottomHotspotC,
                  serial[i].dramBottomHotspotC)
            << i;
        EXPECT_EQ(parallel[i].procPowerW, serial[i].procPowerW) << i;
        EXPECT_EQ(parallel[i].dramPowerW, serial[i].dramPowerW) << i;
    }
}

TEST(ParallelRuns, DiskCacheReplaysTheSweepExactly)
{
    namespace fs = std::filesystem;
    const std::string dir =
        (fs::temp_directory_path() / "xylem_test_sweep_replay").string();
    fs::remove_all(dir);

    ExperimentConfig cfg = tiny();
    cfg.apps = {"LU(NAS)"};
    cfg.runner.cacheDir = dir;
    clearSimCache();
    const auto first = runTemperatureSweep(cfg, {Scheme::Base});
    clearSimCache();
    // Second run decodes every entry from disk — no simulation, no
    // thermal solve — and must reproduce the records exactly.
    const auto second = runTemperatureSweep(cfg, {Scheme::Base});

    ASSERT_EQ(second.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(second[i].app, first[i].app) << i;
        EXPECT_EQ(second[i].freqGHz, first[i].freqGHz) << i;
        EXPECT_EQ(second[i].procHotspotC, first[i].procHotspotC) << i;
        EXPECT_EQ(second[i].procPowerW, first[i].procPowerW) << i;
        EXPECT_EQ(second[i].dramPowerW, first[i].dramPowerW) << i;
    }
    fs::remove_all(dir);
}

TEST(DieCountSweep, XylemHelpsMoreWithMoreDies)
{
    // With more D2D layers in series, bridging them matters more.
    ExperimentConfig cfg = tiny();
    cfg.apps = {"LU(NAS)"};
    const auto entries =
        runDieCountSweep(cfg, {4, 8}, {Scheme::Base, Scheme::BankE});
    ASSERT_EQ(entries.size(), 4u);
    const double delta4 =
        entries[0].avgProcHotspotC - entries[1].avgProcHotspotC;
    const double delta8 =
        entries[2].avgProcHotspotC - entries[3].avgProcHotspotC;
    EXPECT_GT(delta8, delta4);
}

} // namespace
} // namespace xylem::core
