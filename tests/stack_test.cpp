/**
 * @file
 * Tests for stack assembly: schemes (Table 2), layer structure,
 * heterogeneous conductivity painting and the §7.1 area overheads.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "stack/stack.hpp"

namespace xylem::stack {
namespace {

// ---------------------------------------------------------------------
// Schemes (Table 2)
// ---------------------------------------------------------------------

TEST(Scheme, NamesRoundTrip)
{
    for (Scheme s : allSchemes())
        EXPECT_EQ(schemeFromString(toString(s)), s);
    EXPECT_THROW(schemeFromString("bogus"), FatalError);
}

TEST(Scheme, Table2TtsvCounts)
{
    EXPECT_EQ(ttsvCountPerDie(Scheme::Base), 0);
    EXPECT_EQ(ttsvCountPerDie(Scheme::Bank), 28);
    EXPECT_EQ(ttsvCountPerDie(Scheme::BankE), 36);
    EXPECT_EQ(ttsvCountPerDie(Scheme::IsoCount), 28);
    EXPECT_EQ(ttsvCountPerDie(Scheme::Prior), 36);
}

TEST(Scheme, OnlyXylemSchemesShort)
{
    EXPECT_FALSE(schemeShortsBumps(Scheme::Base));
    EXPECT_FALSE(schemeShortsBumps(Scheme::Prior));
    EXPECT_TRUE(schemeShortsBumps(Scheme::Bank));
    EXPECT_TRUE(schemeShortsBumps(Scheme::BankE));
    EXPECT_TRUE(schemeShortsBumps(Scheme::IsoCount));
}

class SchemeSiteTest : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(SchemeSiteTest, SiteCountMatchesTable2)
{
    const auto die = floorplan::buildDramDie();
    const auto sites = selectTtsvSites(GetParam(), die);
    EXPECT_EQ(static_cast<int>(sites.size()),
              ttsvCountPerDie(GetParam()));
}

TEST_P(SchemeSiteTest, SitesAreUnique)
{
    const auto die = floorplan::buildDramDie();
    const auto sites = selectTtsvSites(GetParam(), die);
    for (std::size_t i = 0; i < sites.size(); ++i)
        for (std::size_t j = i + 1; j < sites.size(); ++j)
            EXPECT_GT(geometry::distance(sites[i], sites[j]), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeSiteTest,
                         ::testing::ValuesIn(allSchemes()),
                         [](const auto &info) {
                             return std::string(toString(info.param));
                         });

// ---------------------------------------------------------------------
// Stack assembly
// ---------------------------------------------------------------------

StackSpec
smallSpec(Scheme scheme, int dies = 2)
{
    StackSpec spec;
    spec.scheme = scheme;
    spec.numDramDies = dies;
    spec.gridNx = 40;
    spec.gridNy = 40;
    return spec;
}

TEST(BuildStack, LayerStructureForEightDies)
{
    const BuiltStack s = buildStack(smallSpec(Scheme::Base, 8));
    // proc metal + proc Si + 8 x (D2D + metal + Si) + TIM + IHS + sink.
    EXPECT_EQ(s.layers.size(), 2u + 8 * 3 + 3);
    EXPECT_EQ(s.procMetal, 0);
    EXPECT_EQ(s.procSilicon, 1);
    EXPECT_EQ(s.d2d.size(), 8u);
    EXPECT_EQ(s.dramMetal.size(), 8u);
    EXPECT_EQ(s.dramSilicon.size(), 8u);
    EXPECT_EQ(s.heatSink, static_cast<int>(s.layers.size()) - 1);
    EXPECT_EQ(s.ihs, s.heatSink - 1);
    EXPECT_EQ(s.tim, s.ihs - 1);
}

TEST(BuildStack, LayerOrderIsBottomUp)
{
    const BuiltStack s = buildStack(smallSpec(Scheme::Base, 3));
    // Each DRAM die d contributes D2D < metal < silicon, in order.
    for (int d = 0; d < 3; ++d) {
        EXPECT_EQ(s.dramMetal[d], s.d2d[d] + 1);
        EXPECT_EQ(s.dramSilicon[d], s.d2d[d] + 2);
        if (d > 0) {
            EXPECT_EQ(s.d2d[d], s.dramSilicon[d - 1] + 1);
        }
    }
    EXPECT_EQ(s.d2d[0], s.procSilicon + 1);
}

TEST(BuildStack, OnlyMetalLayersAreHeatSources)
{
    const BuiltStack s = buildStack(smallSpec(Scheme::Base, 2));
    for (std::size_t l = 0; l < s.layers.size(); ++l) {
        const auto kind = s.layers[l].kind;
        const bool is_source = kind == LayerKind::ProcMetal ||
                               kind == LayerKind::DramMetal;
        EXPECT_EQ(s.layers[l].heatSource, is_source) << s.layers[l].name;
    }
}

TEST(BuildStack, ExtendedLayersAreIhsAndSink)
{
    const BuiltStack s = buildStack(smallSpec(Scheme::Base, 2));
    for (const auto &layer : s.layers) {
        if (layer.kind == LayerKind::Ihs)
            EXPECT_DOUBLE_EQ(layer.fullSide, 3e-2);
        else if (layer.kind == LayerKind::HeatSink)
            EXPECT_DOUBLE_EQ(layer.fullSide, 6e-2);
        else
            EXPECT_DOUBLE_EQ(layer.fullSide, 0.0);
    }
}

TEST(BuildStack, DieThicknessIsApplied)
{
    StackSpec spec = smallSpec(Scheme::Base, 2);
    spec.dieThickness = 50e-6;
    const BuiltStack s = buildStack(spec);
    EXPECT_DOUBLE_EQ(s.layers[s.procSilicon].thickness, 50e-6);
    EXPECT_DOUBLE_EQ(s.layers[s.dramSilicon[0]].thickness, 50e-6);
}

TEST(BuildStack, RejectsBadSpecs)
{
    StackSpec spec = smallSpec(Scheme::Base);
    spec.numDramDies = 0;
    EXPECT_THROW(buildStack(spec), PanicError);
    spec = smallSpec(Scheme::Base);
    spec.dieThickness = 0.0;
    EXPECT_THROW(buildStack(spec), PanicError);
    spec = smallSpec(Scheme::Base);
    spec.proc.dieWidth = 9e-3;
    EXPECT_THROW(buildStack(spec), PanicError);
}

// ---------------------------------------------------------------------
// Conductivity painting
// ---------------------------------------------------------------------

/** Conductivity of the cell containing point p in layer l. */
double
lambdaAt(const BuiltStack &s, int layer, const geometry::Point &p)
{
    std::size_t ix, iy;
    s.grid.locate(p, ix, iy);
    return s.layers[layer].conductivity.at(ix, iy);
}

TEST(Painting, BaseSiliconHasNoTtsvs)
{
    const BuiltStack s = buildStack(smallSpec(Scheme::Base));
    const auto die = s.dramDie;
    for (const auto &site : die.vertexSites) {
        EXPECT_NEAR(lambdaAt(s, s.procSilicon, site), 120.0, 1.0);
    }
}

TEST(Painting, TtsvCellsAreCopperInEverySiliconLayer)
{
    // Grid must resolve one TTSV per cell for the paint check: use the
    // production 80x80 grid (100 µm cells).
    StackSpec spec = smallSpec(Scheme::BankE, 2);
    spec.gridNx = 80;
    spec.gridNy = 80;
    const BuiltStack s = buildStack(spec);
    int copperish = 0;
    for (const auto &site : s.ttsvSites) {
        // The TTSV may straddle up to 4 cells; the containing cell
        // must be noticeably enriched.
        const double l = lambdaAt(s, s.procSilicon, site);
        if (l > 150.0)
            ++copperish;
        EXPECT_GT(l, 120.0);
        EXPECT_GT(lambdaAt(s, s.dramSilicon[1], site), 120.0);
    }
    EXPECT_GT(copperish, 18); // most sites concentrate in one cell
}

TEST(Painting, ShortedSchemesBridgeTheD2DLayer)
{
    StackSpec spec = smallSpec(Scheme::Bank, 2);
    spec.gridNx = 80;
    spec.gridNy = 80;
    const BuiltStack s = buildStack(spec);
    for (const auto &site : s.ttsvSites) {
        EXPECT_GT(lambdaAt(s, s.d2d[0], site), 1.5);
        EXPECT_GT(lambdaAt(s, s.d2d[1], site), 1.5);
    }
}

TEST(Painting, PriorLeavesTheD2DLayerUntouched)
{
    StackSpec spec = smallSpec(Scheme::Prior, 2);
    spec.gridNx = 80;
    spec.gridNy = 80;
    const BuiltStack s = buildStack(spec);
    for (const auto &site : s.ttsvSites) {
        EXPECT_NEAR(lambdaAt(s, s.d2d[0], site), 1.5, 1e-9);
        // ...but the silicon still has the TTSVs.
        EXPECT_GT(lambdaAt(s, s.procSilicon, site), 120.0);
    }
}

TEST(Painting, TsvBusIsPaintedInSilicon)
{
    // The production 80x80 grid resolves the 0.2 mm bus exactly.
    StackSpec spec = smallSpec(Scheme::Base, 2);
    spec.gridNx = 80;
    spec.gridNy = 80;
    const BuiltStack s = buildStack(spec);
    const geometry::Point in_bus{s.procDie.tsvBus.center().x,
                                 s.procDie.tsvBus.y +
                                     s.procDie.tsvBus.h / 4.0};
    EXPECT_NEAR(lambdaAt(s, s.procSilicon, in_bus), 190.0, 1.0);
    EXPECT_NEAR(lambdaAt(s, s.dramSilicon[0], in_bus), 190.0, 1.0);
    // The D2D layer above the bus stays at the measured average.
    EXPECT_NEAR(lambdaAt(s, s.d2d[0], in_bus), 1.5, 1e-9);
}

TEST(Painting, MetalLayersAreUniform)
{
    const BuiltStack s = buildStack(smallSpec(Scheme::BankE));
    const auto &metal = s.layers[s.dramMetal[0]].conductivity;
    for (std::size_t c = 0; c < s.grid.cells(); ++c)
        EXPECT_DOUBLE_EQ(metal.data()[c], 9.0);
}

// ---------------------------------------------------------------------
// Ablation hooks
// ---------------------------------------------------------------------

TEST(AblationHooks, D2DOverrideChangesTheBackground)
{
    StackSpec spec = smallSpec(Scheme::Base);
    spec.d2dLambdaOverride = 100.0;
    const BuiltStack s = buildStack(spec);
    EXPECT_DOUBLE_EQ(s.layers[s.d2d[0]].conductivity.data()[0], 100.0);
    // Zero keeps the Table 1 value.
    spec.d2dLambdaOverride = 0.0;
    const BuiltStack t = buildStack(spec);
    EXPECT_DOUBLE_EQ(t.layers[t.d2d[0]].conductivity.data()[0], 1.5);
}

TEST(AblationHooks, PillarsNeverWorsenAnOverriddenD2D)
{
    StackSpec spec = smallSpec(Scheme::Bank);
    spec.d2dLambdaOverride = 100.0; // above the 43.5 pillar material
    const BuiltStack s = buildStack(spec);
    for (double v : s.layers[s.d2d[0]].conductivity.data())
        EXPECT_DOUBLE_EQ(v, 100.0);
}

TEST(AblationHooks, CustomSitesReplaceTheScheme)
{
    StackSpec spec = smallSpec(Scheme::BankE);
    spec.customTtsvSites = {{1e-3, 1e-3}, {7e-3, 7e-3}};
    const BuiltStack s = buildStack(spec);
    EXPECT_EQ(s.ttsvCount(), 2);
    // The scheme still controls shorting: both D2D cells are bridged.
    std::size_t ix, iy;
    s.grid.locate({1e-3, 1e-3}, ix, iy);
    EXPECT_GT(s.layers[s.d2d[0]].conductivity.at(ix, iy), 1.5);
}

// ---------------------------------------------------------------------
// §7.1 area overheads
// ---------------------------------------------------------------------

TEST(Overheads, BankIsZeroPoint63Percent)
{
    const BuiltStack s = buildStack(smallSpec(Scheme::Bank));
    // 28 TTSVs x 0.0144 mm² / 64.34 mm² (Samsung Wide I/O prototype).
    EXPECT_NEAR(s.ttsvAreaOverhead() * 100.0, 0.63, 0.01);
}

TEST(Overheads, BankeIsZeroPoint81Percent)
{
    const BuiltStack s = buildStack(smallSpec(Scheme::BankE));
    EXPECT_NEAR(s.ttsvAreaOverhead() * 100.0, 0.81, 0.01);
}

TEST(Overheads, BaseHasNone)
{
    const BuiltStack s = buildStack(smallSpec(Scheme::Base));
    EXPECT_DOUBLE_EQ(s.ttsvAreaOverhead(), 0.0);
}

TEST(Overheads, SingleTtsvFootprint)
{
    // TTSV + KOZ = (100 + 2*10) µm square = 0.0144 mm².
    const BuiltStack s = buildStack(smallSpec(Scheme::Bank));
    const double per_ttsv = s.ttsvAreaOverhead(1.0) / s.ttsvCount();
    EXPECT_NEAR(per_ttsv / units::mm2, 0.0144, 1e-6);
}

} // namespace
} // namespace xylem::stack
