/**
 * @file
 * Tests for the material library: the mixing rules of §6.1 and the
 * paper's headline thermal-resistance numbers (Fig. 3, §2.5, §4.1).
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "materials/library.hpp"

namespace xylem::materials {
namespace {

using namespace constants;

TEST(Mixture, RuleOfMixtures)
{
    // §6.1 worked example: 25% Cu + 75% Si = 190 W/mK.
    EXPECT_DOUBLE_EQ(mixConductivity(400.0, 0.25, 120.0), 190.0);
}

TEST(Mixture, DegenerateFractions)
{
    EXPECT_DOUBLE_EQ(mixConductivity(400.0, 1.0, 120.0), 400.0);
    EXPECT_DOUBLE_EQ(mixConductivity(400.0, 0.0, 120.0), 120.0);
}

TEST(Mixture, RejectsBadFraction)
{
    EXPECT_THROW(mixConductivity(1.0, 1.5, 2.0), PanicError);
    EXPECT_THROW(mixConductivity(1.0, -0.1, 2.0), PanicError);
}

TEST(Mixture, HeatCapacityMix)
{
    EXPECT_DOUBLE_EQ(mixHeatCapacity(4.0, 0.5, 2.0), 3.0);
}

TEST(Series, TwoLayerStack)
{
    // 18 µm at 40 W/mK + 2 µm at 400 W/mK -> R = 0.455 mm²K/W over
    // 20 µm (the paper rounds to 0.46), i.e. λ_eff ≈ 44 W/mK (§4.1.2).
    const double lambda = seriesConductivity({18e-6, 2e-6}, {40.0, 400.0});
    EXPECT_NEAR(20e-6 / lambda, 0.46 * units::mm2KperW,
                0.01 * units::mm2KperW);
    EXPECT_NEAR(lambda, 43.96, 0.05);
}

TEST(Series, SingleLayerIsIdentity)
{
    EXPECT_DOUBLE_EQ(seriesConductivity({5e-6}, {7.0}), 7.0);
}

TEST(Series, RejectsMismatchedOrEmpty)
{
    EXPECT_THROW(seriesConductivity({}, {}), PanicError);
    EXPECT_THROW(seriesConductivity({1e-6}, {1.0, 2.0}), PanicError);
    EXPECT_THROW(seriesConductivity({0.0}, {1.0}), PanicError);
}

TEST(Slab, Resistance)
{
    EXPECT_DOUBLE_EQ(slabResistance(20e-6, 1.5), 20e-6 / 1.5);
    EXPECT_THROW(slabResistance(0.0, 1.0), PanicError);
    EXPECT_THROW(slabResistance(1.0, 0.0), PanicError);
}

// ---------------------------------------------------------------------
// Paper constants (Table 1, §2.5).
// ---------------------------------------------------------------------

TEST(PaperNumbers, D2DLayerResistance)
{
    // R_th of the average D2D layer ≈ 13.33 mm²K/W.
    const double r = slabResistance(thicknessD2D, lambdaD2DBackground);
    EXPECT_NEAR(r / units::mm2KperW, 13.33, 0.01);
}

TEST(PaperNumbers, BulkSiliconResistance)
{
    // ≈ 0.83 mm²K/W for 100 µm of silicon.
    const double r = slabResistance(thicknessDieSilicon, lambdaSilicon);
    EXPECT_NEAR(r / units::mm2KperW, 0.83, 0.01);
}

TEST(PaperNumbers, ProcMetalResistance)
{
    // ≈ 1 mm²K/W for the 12 µm processor metal stack.
    const double r = slabResistance(thicknessProcMetal, lambdaProcMetal);
    EXPECT_NEAR(r / units::mm2KperW, 1.0, 0.01);
}

TEST(PaperNumbers, FrontsideMetalResistance)
{
    // Fig. 3c: R_th of the DRAM frontside metal ≈ 0.22 mm²K/W
    // (d = 2 µm, λ = 9 W/mK).
    const double r = slabResistance(thicknessDramMetal, lambdaDramMetal);
    EXPECT_NEAR(r / units::mm2KperW, 0.222, 0.001);
}

TEST(PaperNumbers, D2DIsRoughly16xSiliconAnd13xMetal)
{
    const double d2d = slabResistance(thicknessD2D, lambdaD2DBackground);
    const double si = slabResistance(thicknessDieSilicon, lambdaSilicon);
    const double metal = slabResistance(thicknessProcMetal,
                                        lambdaProcMetal);
    EXPECT_NEAR(d2d / si, 16.0, 0.5);
    EXPECT_NEAR(d2d / metal, 13.33, 0.5);
}

TEST(PaperNumbers, ShortedPillarIs30xBetterThanAverageD2D)
{
    const Material pillar = shortedBumpColumn();
    const double r_pillar = slabResistance(thicknessD2D,
                                           pillar.conductivity);
    const double r_avg = slabResistance(thicknessD2D,
                                        lambdaD2DBackground);
    EXPECT_NEAR(r_avg / r_pillar, 29.0, 1.0); // "≈30x lower" (§4.1.2)
}

// ---------------------------------------------------------------------
// Library materials.
// ---------------------------------------------------------------------

TEST(Library, Table1Conductivities)
{
    EXPECT_DOUBLE_EQ(silicon().conductivity, 120.0);
    EXPECT_DOUBLE_EQ(copper().conductivity, 400.0);
    EXPECT_DOUBLE_EQ(tsvBus().conductivity, 190.0);
    EXPECT_DOUBLE_EQ(dramMetal().conductivity, 9.0);
    EXPECT_DOUBLE_EQ(procMetal().conductivity, 12.0);
    EXPECT_DOUBLE_EQ(d2dBackground().conductivity, 1.5);
    EXPECT_DOUBLE_EQ(tim().conductivity, 5.0);
    EXPECT_DOUBLE_EQ(ihs().conductivity, 400.0);
    EXPECT_DOUBLE_EQ(heatSink().conductivity, 400.0);
}

TEST(Library, NamesAreSet)
{
    EXPECT_EQ(silicon().name, "Si");
    EXPECT_EQ(tsvBus().name, "TSV-bus");
    EXPECT_FALSE(shortedBumpColumn().name.empty());
}

TEST(Library, HeatCapacitiesArePositive)
{
    for (const Material &m :
         {silicon(), copper(), tsvBus(), dramMetal(), procMetal(),
          d2dBackground(), shortedBumpColumn(),
          alignedUnshortedBumpColumn(), tim(), ihs(), heatSink()}) {
        EXPECT_GT(m.heatCapacity, 0.0) << m.name;
        EXPECT_GT(m.conductivity, 0.0) << m.name;
    }
}

TEST(Library, UnshortedBumpColumnIsWorseThanShorted)
{
    EXPECT_LT(alignedUnshortedBumpColumn().conductivity,
              shortedBumpColumn().conductivity);
    // But still far better than the average D2D layer.
    EXPECT_GT(alignedUnshortedBumpColumn().conductivity,
              10.0 * lambdaD2DBackground);
}

TEST(Library, StackGeometryConstants)
{
    EXPECT_DOUBLE_EQ(thicknessDieSilicon, 100e-6);
    EXPECT_DOUBLE_EQ(thicknessD2D, 20e-6);
    EXPECT_DOUBLE_EQ(thicknessTim, 50e-6);
    EXPECT_DOUBLE_EQ(sideHeatSink, 6e-2);
    EXPECT_DOUBLE_EQ(sideIhs, 3e-2);
    EXPECT_DOUBLE_EQ(ttsvSide, 100e-6);
    EXPECT_DOUBLE_EQ(ttsvKoz, 10e-6);
    EXPECT_DOUBLE_EQ(thicknessMicroBump + thicknessBacksideVia,
                     thicknessD2D);
}

} // namespace
} // namespace xylem::materials
