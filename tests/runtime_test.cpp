/**
 * @file
 * Tests of the experiment runtime: work-stealing thread pool,
 * telemetry registry, persistent result cache, and sweep runner.
 * These suites (plus concurrency_test) are the ones CI re-runs under
 * ThreadSanitizer.
 */

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/task_context.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/disk_cache.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/metrics.hpp"
#include "runtime/serialize.hpp"
#include "runtime/sweep_runner.hpp"
#include "runtime/thread_pool.hpp"

namespace xylem::runtime {
namespace {

namespace fs = std::filesystem;

/** A unique, self-deleting temp directory per test. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_((fs::temp_directory_path() /
                 ("xylem_test_" + tag + "_" +
                  std::to_string(::getpid())))
                    .string())
    {
        fs::remove_all(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

TEST(ThreadPool, SubmitReturnsResults)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([i]() { return i * i; }));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ExceptionsPropagateThroughTheFuture)
{
    ThreadPool pool(2);
    auto fut = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
    EXPECT_THROW(fut.get(), std::runtime_error);
    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPool, GracefulShutdownRunsEverySubmittedTask)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(3);
        for (int i = 0; i < 200; ++i)
            pool.submit([&done]() { done.fetch_add(1); });
        // Destructor drains the queues before joining.
    }
    EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, UnbalancedTasksUseMultipleWorkers)
{
    ThreadPool pool(4);
    std::mutex mutex;
    std::set<std::thread::id> seen;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i) {
        futures.push_back(pool.submit([&, i]() {
            // A few long tasks and many short ones: the short ones
            // must get stolen by the otherwise idle workers.
            if (i % 16 == 0)
                std::this_thread::sleep_for(std::chrono::milliseconds(30));
            std::lock_guard<std::mutex> lock(mutex);
            seen.insert(std::this_thread::get_id());
        }));
    }
    for (auto &f : futures)
        f.get();
    EXPECT_GE(seen.size(), 2u);
}

TEST(ThreadPool, BoundedQueueStillCompletesEverything)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2, /*max_pending=*/4);
        for (int i = 0; i < 100; ++i)
            pool.submit([&done]() { done.fetch_add(1); });
    }
    EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexInlineAndPooled)
{
    std::vector<std::atomic<int>> hits(257);
    ThreadPool::parallelFor(nullptr, hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    ThreadPool pool(4);
    ThreadPool::parallelFor(&pool, hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 2);
}

TEST(ThreadPool, ParallelForPropagatesTaskExceptions)
{
    ThreadPool pool(4);
    EXPECT_THROW(ThreadPool::parallelFor(&pool, 64,
                                         [&](std::size_t i) {
                                             if (i == 13)
                                                 throw std::runtime_error(
                                                     "boom");
                                         }),
                 std::runtime_error);
}

TEST(ThreadPool, ResolveJobsHonoursEnvironment)
{
    ::setenv("XYLEM_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultJobs(), 3);
    EXPECT_EQ(ThreadPool::resolveJobs(0), 3);
    EXPECT_EQ(ThreadPool::resolveJobs(5), 5);
    ::setenv("XYLEM_JOBS", "bogus", 1);
    EXPECT_EQ(ThreadPool::defaultJobs(), 1);
    ::unsetenv("XYLEM_JOBS");
    EXPECT_EQ(ThreadPool::defaultJobs(), 1);
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

TEST(Metrics, CountersAccumulateAcrossThreads)
{
    Metrics::global().reset();
    auto &c = Metrics::global().counter("test.counter");
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&c]() {
            for (int i = 0; i < 1000; ++i)
                c.increment();
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(Metrics::global().snapshot().count("test.counter"), 4000u);
    Metrics::global().reset();
}

TEST(Metrics, TimingsAggregateMinMeanMax)
{
    Metrics::global().reset();
    Metrics::global().addTiming("test.timing", 0.5);
    Metrics::global().addTiming("test.timing", 1.5);
    Metrics::global().addTiming("test.timing", 1.0);
    const auto snap = Metrics::global().snapshot();
    const auto &t = snap.timings.at("test.timing");
    EXPECT_EQ(t.count, 3u);
    EXPECT_DOUBLE_EQ(t.totalSeconds, 3.0);
    EXPECT_DOUBLE_EQ(t.meanSeconds(), 1.0);
    EXPECT_DOUBLE_EQ(t.minSeconds, 0.5);
    EXPECT_DOUBLE_EQ(t.maxSeconds, 1.5);
    Metrics::global().reset();
}

TEST(Metrics, JsonContainsCountersAndTimings)
{
    Metrics::global().reset();
    Metrics::global().counter("json.counter").add(42);
    Metrics::global().addTiming("json.timing", 0.25);
    const std::string json = Metrics::global().toJson();
    EXPECT_NE(json.find("\"json.counter\":42"), std::string::npos);
    EXPECT_NE(json.find("\"json.timing\""), std::string::npos);
    Metrics::global().reset();
}

// ---------------------------------------------------------------------
// DiskCache
// ---------------------------------------------------------------------

TEST(DiskCache, RoundTripsPayloads)
{
    TempDir dir("roundtrip");
    DiskCache cache(dir.path(), 1);
    const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 0, 7};
    EXPECT_FALSE(cache.load("key-a").has_value());
    cache.store("key-a", payload);
    const auto back = cache.load("key-a");
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, payload);
    EXPECT_EQ(cache.recordCount(), 1u);
    // Overwrite under the same key.
    cache.store("key-a", {9});
    EXPECT_EQ(cache.load("key-a")->size(), 1u);
    EXPECT_EQ(cache.recordCount(), 1u);
}

TEST(DiskCache, VersionMismatchReadsAsMiss)
{
    TempDir dir("version");
    {
        DiskCache v1(dir.path(), 1);
        v1.store("key", {1, 2, 3});
        ASSERT_TRUE(v1.load("key").has_value());
    }
    DiskCache v2(dir.path(), 2);
    EXPECT_FALSE(v2.load("key").has_value());
    // And a v2 store heals the record for v2 readers.
    v2.store("key", {4, 5});
    EXPECT_TRUE(v2.load("key").has_value());
}

TEST(DiskCache, TruncatedRecordReadsAsMiss)
{
    TempDir dir("truncated");
    DiskCache cache(dir.path(), 1);
    cache.store("key", std::vector<std::uint8_t>(300, 0xAB));
    // Truncate the single record file roughly in half.
    for (const auto &entry : fs::directory_iterator(dir.path())) {
        fs::resize_file(entry.path(),
                        fs::file_size(entry.path()) / 2);
    }
    EXPECT_FALSE(cache.load("key").has_value());
    // A fresh store recovers.
    cache.store("key", {1});
    EXPECT_TRUE(cache.load("key").has_value());
}

TEST(DiskCache, CorruptPayloadFailsTheChecksum)
{
    TempDir dir("corrupt");
    DiskCache cache(dir.path(), 1);
    cache.store("key", std::vector<std::uint8_t>(64, 0x5A));
    for (const auto &entry : fs::directory_iterator(dir.path())) {
        std::fstream f(entry.path(),
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(-12, std::ios::end); // inside the payload/checksum
        f.put('\x00');
    }
    EXPECT_FALSE(cache.load("key").has_value());
}

TEST(DiskCache, EmptyRecordFileReadsAsMiss)
{
    TempDir dir("empty");
    DiskCache cache(dir.path(), 1);
    cache.store("key", {1, 2, 3});
    for (const auto &entry : fs::directory_iterator(dir.path()))
        fs::resize_file(entry.path(), 0);
    EXPECT_FALSE(cache.load("key").has_value());
}

TEST(DiskCache, ConcurrentStoresAndLoadsAgree)
{
    TempDir dir("concurrent");
    DiskCache cache(dir.path(), 1);
    const std::vector<std::uint8_t> payload(128, 0x33);
    std::atomic<int> bad{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&]() {
            for (int i = 0; i < 50; ++i) {
                cache.store("shared", payload);
                const auto got = cache.load("shared");
                // Concurrent replace: old or new record, never torn.
                if (got && *got != payload)
                    bad.fetch_add(1);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(bad.load(), 0);
    ASSERT_TRUE(cache.load("shared").has_value());
    EXPECT_EQ(*cache.load("shared"), payload);
}

// ---------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------

TEST(Serialize, RoundTripsEveryType)
{
    BinaryWriter w;
    w.u32(0xDEADBEEF);
    w.u64(1ull << 50);
    w.i32(-42);
    w.f64(3.141592653589793);
    w.boolean(true);
    w.str("hello");
    w.vecF64({1.5, -2.5});
    w.vecU64({7, 8, 9});
    BinaryReader r(w.bytes());
    EXPECT_EQ(r.u32(), 0xDEADBEEF);
    EXPECT_EQ(r.u64(), 1ull << 50);
    EXPECT_EQ(r.i32(), -42);
    EXPECT_DOUBLE_EQ(r.f64(), 3.141592653589793);
    EXPECT_TRUE(r.boolean());
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.vecF64(), (std::vector<double>{1.5, -2.5}));
    EXPECT_EQ(r.vecU64(), (std::vector<std::uint64_t>{7, 8, 9}));
    EXPECT_TRUE(r.atEnd());
}

TEST(Serialize, ThrowsOnTruncationAndBogusLengths)
{
    BinaryWriter w;
    w.u64(1u << 20); // a length prefix promising a megabyte
    BinaryReader r(w.bytes());
    EXPECT_THROW(r.vecF64(), SerializeError);
    BinaryReader r2(w.bytes().data(), 3);
    EXPECT_THROW(r2.u64(), SerializeError);
}

// ---------------------------------------------------------------------
// SweepRunner
// ---------------------------------------------------------------------

void
encodeInt(BinaryWriter &w, const int &v)
{
    w.i32(v);
}

int
decodeInt(BinaryReader &r)
{
    return r.i32();
}

TEST(SweepRunner, ResultsComeBackInIndexOrder)
{
    RunnerOptions opts;
    opts.jobs = 4;
    SweepRunner runner(opts);
    const auto out = runner.run<int>(
        100, nullptr,
        [](std::size_t i) { return static_cast<int>(i) * 3; }, encodeInt,
        decodeInt);
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) * 3);
}

TEST(SweepRunner, SecondRunIsServedFromTheDiskCache)
{
    // Exact compute counts: opt out of any ambient CI fault spec.
    FaultInjector::ScopedSpec quiet("");
    TempDir dir("sweepcache");
    RunnerOptions opts;
    opts.jobs = 2;
    opts.cacheDir = dir.path();
    std::atomic<int> computes{0};
    auto key = [](std::size_t i) {
        return "task-" + std::to_string(i);
    };
    auto compute = [&computes](std::size_t i) {
        computes.fetch_add(1);
        return static_cast<int>(i) + 10;
    };
    {
        SweepRunner runner(opts);
        const auto out =
            runner.run<int>(20, key, compute, encodeInt, decodeInt);
        EXPECT_EQ(out[19], 29);
    }
    EXPECT_EQ(computes.load(), 20);
    {
        SweepRunner runner(opts);
        const auto out =
            runner.run<int>(20, key, compute, encodeInt, decodeInt);
        EXPECT_EQ(out[19], 29);
    }
    EXPECT_EQ(computes.load(), 20) << "second run must not recompute";
}

TEST(SweepRunner, EmptyKeysAreNeverCached)
{
    FaultInjector::ScopedSpec quiet("");
    TempDir dir("uncachable");
    RunnerOptions opts;
    opts.cacheDir = dir.path();
    std::atomic<int> computes{0};
    auto compute = [&computes](std::size_t i) {
        computes.fetch_add(1);
        return static_cast<int>(i);
    };
    auto key = [](std::size_t) { return std::string(); };
    SweepRunner runner(opts);
    runner.run<int>(5, key, compute, encodeInt, decodeInt);
    runner.run<int>(5, key, compute, encodeInt, decodeInt);
    EXPECT_EQ(computes.load(), 10);
    EXPECT_EQ(runner.diskCache()->recordCount(), 0u);
}

TEST(SweepRunner, StaleVersionRecordsRecompute)
{
    TempDir dir("stale");
    auto key = [](std::size_t i) { return "k" + std::to_string(i); };
    {
        // Simulate an older build writing the same keys.
        DiskCache old(dir.path(), kResultCacheVersion + 1000);
        BinaryWriter w;
        w.i32(999);
        old.store("k0", w.bytes());
    }
    RunnerOptions opts;
    opts.cacheDir = dir.path();
    SweepRunner runner(opts);
    const auto out = runner.run<int>(
        1, key, [](std::size_t) { return 5; }, encodeInt, decodeInt);
    EXPECT_EQ(out[0], 5) << "stale record must not be decoded";
}

TEST(SweepRunner, TaskExceptionsPropagate)
{
    RunnerOptions opts;
    opts.jobs = 3;
    SweepRunner runner(opts);
    EXPECT_THROW(runner.run<int>(
                     10, nullptr,
                     [](std::size_t i) -> int {
                         if (i == 7)
                             throw std::runtime_error("task 7 failed");
                         return 0;
                     },
                     encodeInt, decodeInt),
                 std::runtime_error);
}

// ---------------------------------------------------------------------
// SweepRunner fault tolerance
// ---------------------------------------------------------------------

TEST(SweepRunner, RetriesRecoverTransientFailures)
{
    FaultInjector::ScopedSpec quiet("");
    Metrics::global().reset();
    RunnerOptions opts;
    opts.jobs = 2;
    opts.maxRetries = 2;
    SweepRunner runner(opts);
    std::vector<std::atomic<int>> attempts(10);
    const auto out = runner.run<int>(
        10, nullptr,
        [&](std::size_t i) -> int {
            // Every third task fails on its first attempt only.
            if (i % 3 == 0 && attempts[i].fetch_add(1) == 0)
                throw std::runtime_error("transient");
            return static_cast<int>(i);
        },
        encodeInt, decodeInt);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(out[i], static_cast<int>(i));
    const auto snap = Metrics::global().snapshot();
    EXPECT_EQ(snap.count("runner.retries"), 4u); // tasks 0, 3, 6, 9
    EXPECT_EQ(snap.count("runner.failed"), 0u);
    Metrics::global().reset();
}

TEST(SweepRunner, AggregatesEveryPermanentFailure)
{
    FaultInjector::ScopedSpec quiet("");
    RunnerOptions opts;
    opts.jobs = 3;
    opts.maxRetries = 1;
    SweepRunner runner(opts);
    try {
        runner.run<int>(
            12, nullptr,
            [](std::size_t i) -> int {
                if (i == 2 || i == 7 || i == 11)
                    throw std::runtime_error("broken task " +
                                             std::to_string(i));
                return static_cast<int>(i);
            },
            encodeInt, decodeInt);
        FAIL() << "expected SweepError";
    } catch (const SweepError &e) {
        ASSERT_EQ(e.failures().size(), 3u);
        EXPECT_EQ(e.failures()[0].index, 2u);
        EXPECT_EQ(e.failures()[1].index, 7u);
        EXPECT_EQ(e.failures()[2].index, 11u);
        // maxRetries=1: each task got an initial attempt plus one retry.
        for (const auto &f : e.failures())
            EXPECT_EQ(f.attempts, 2);
        const std::string what = e.what();
        EXPECT_NE(what.find("task 2"), std::string::npos);
        EXPECT_NE(what.find("task 7"), std::string::npos);
        EXPECT_NE(what.find("task 11"), std::string::npos);
        EXPECT_NE(what.find("broken task 7"), std::string::npos);
    }
}

TEST(SweepRunner, RunTolerantQuarantinesAndKeepsPartialResults)
{
    FaultInjector::ScopedSpec quiet("");
    Metrics::global().reset();
    RunnerOptions opts;
    opts.maxRetries = 1;
    SweepRunner runner(opts);
    const auto outcome = runner.runTolerant<int>(
        8, nullptr,
        [](std::size_t i) -> int {
            if (i == 4)
                throw std::runtime_error("always fails");
            return static_cast<int>(i) * 2;
        },
        encodeInt, decodeInt);
    EXPECT_FALSE(outcome.complete());
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].index, 4u);
    EXPECT_EQ(outcome.failures[0].code, "unknown");
    EXPECT_FALSE(outcome.results[4].has_value());
    for (std::size_t i = 0; i < 8; ++i) {
        if (i == 4)
            continue;
        ASSERT_TRUE(outcome.results[i].has_value());
        EXPECT_EQ(*outcome.results[i], static_cast<int>(i) * 2);
    }
    EXPECT_EQ(Metrics::global().snapshot().count("runner.failed"), 1u);
    Metrics::global().reset();
}

TEST(SweepRunner, SolverFailuresClimbTheEscalationLadder)
{
    FaultInjector::ScopedSpec quiet("");
    Metrics::global().reset();
    RunnerOptions opts;
    opts.maxRetries = 1;
    SweepRunner runner(opts);
    std::vector<int> rungs_seen;
    const auto out = runner.run<int>(
        1, nullptr,
        [&](std::size_t) -> int {
            const TaskContext *ctx = currentTaskContext();
            EXPECT_NE(ctx, nullptr);
            EXPECT_TRUE(ctx->strictSolver);
            rungs_seen.push_back(ctx->escalation);
            // Fail like a solver until the dense rung.
            if (!ctx->denseSolve())
                raise(ErrorCode::SolverNonConvergence, "missed tolerance");
            return 42;
        },
        encodeInt, decodeInt);
    EXPECT_EQ(out[0], 42);
    EXPECT_EQ(rungs_seen, (std::vector<int>{0, 1, 2, 3}));
    const auto snap = Metrics::global().snapshot();
    EXPECT_EQ(snap.count("runner.escalations"), 3u);
    EXPECT_EQ(snap.count("runner.retries"), 0u);
    Metrics::global().reset();
}

TEST(SweepRunner, EscalatedResultsAreNotPersisted)
{
    FaultInjector::ScopedSpec quiet("");
    TempDir dir("escalated");
    RunnerOptions opts;
    opts.cacheDir = dir.path();
    opts.maxRetries = 1;
    auto key = [](std::size_t i) { return "e" + std::to_string(i); };
    SweepRunner runner(opts);
    runner.run<int>(
        2, key,
        [](std::size_t i) -> int {
            const TaskContext *ctx = currentTaskContext();
            // Task 1 only succeeds once escalated off rung 0.
            if (i == 1 && ctx->escalation == 0)
                raise(ErrorCode::SolverBreakdown, "rung 0 breaks");
            return static_cast<int>(i);
        },
        encodeInt, decodeInt);
    // Task 0 recovered nothing (rung 0) and is cached; task 1 finished
    // on rung 1, which must not be persisted.
    EXPECT_EQ(runner.diskCache()->recordCount(), 1u);
}

TEST(SweepRunner, DeadlineQuarantinesRunawayTasks)
{
    FaultInjector::ScopedSpec quiet("");
    Metrics::global().reset();
    RunnerOptions opts;
    opts.maxRetries = 1;
    opts.taskTimeoutSeconds = 0.02;
    SweepRunner runner(opts);
    const auto outcome = runner.runTolerant<int>(
        3, nullptr,
        [](std::size_t i) -> int {
            if (i == 1) {
                // A runaway loop that polls the cooperative checkpoint
                // (as the CG loop does every few iterations).
                for (;;)
                    taskCheckpoint();
            }
            return static_cast<int>(i);
        },
        encodeInt, decodeInt);
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].index, 1u);
    EXPECT_EQ(outcome.failures[0].code, "deadline-exceeded");
    const auto snap = Metrics::global().snapshot();
    // A deadline is a solver-level failure: one miss per rung.
    EXPECT_EQ(snap.count("runner.deadline_exceeded"),
              static_cast<std::uint64_t>(kMaxEscalation) + 1);
    EXPECT_EQ(snap.count("runner.failed"), 1u);
    Metrics::global().reset();
}

TEST(SweepRunner, ZeroRetriesDisablesTheResilienceLayer)
{
    FaultInjector::ScopedSpec quiet("");
    RunnerOptions opts;
    opts.maxRetries = 0;
    SweepRunner runner(opts);
    int calls = 0;
    const auto outcome = runner.runTolerant<int>(
        1, nullptr,
        [&](std::size_t) -> int {
            ++calls;
            const TaskContext *ctx = currentTaskContext();
            EXPECT_FALSE(ctx->strictSolver);
            throw std::runtime_error("fails once, quarantined at once");
        },
        encodeInt, decodeInt);
    EXPECT_EQ(calls, 1);
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].attempts, 1);
}

TEST(SweepRunner, InterruptDrainsAndResumeCompletesBitIdentically)
{
    FaultInjector::ScopedSpec quiet("");
    TempDir dir("interrupt");
    RunnerOptions opts;
    opts.jobs = 1; // serial: the drain point is deterministic
    opts.cacheDir = dir.path();
    opts.checkpointInterval = 1;
    auto key = [](std::size_t i) { return "t" + std::to_string(i); };
    std::atomic<int> computes{0};
    auto compute = [&computes](std::size_t i) {
        computes.fetch_add(1);
        if (i == 5)
            SweepRunner::requestInterrupt();
        return static_cast<int>(i) * 7;
    };
    SweepRunner::clearInterruptRequest();
    {
        SweepRunner runner(opts);
        try {
            runner.run<int>(16, key, compute, encodeInt, decodeInt);
            FAIL() << "expected Error(Interrupted)";
        } catch (const Error &e) {
            EXPECT_EQ(e.code(), ErrorCode::Interrupted);
        }
    }
    // Tasks 0..5 ran (the interrupting task itself completes), the
    // rest were skipped by the drain.
    EXPECT_EQ(computes.load(), 6);
    SweepRunner::clearInterruptRequest();
    opts.resume = true;
    SweepRunner runner(opts);
    const auto out = runner.run<int>(16, key, compute, encodeInt,
                                     decodeInt);
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) * 7);
    // The resumed run replayed 0..5 from the cache.
    EXPECT_EQ(computes.load(), 16);
}

// ---------------------------------------------------------------------
// Checkpoint manifests
// ---------------------------------------------------------------------

TEST(Checkpoint, ManifestRoundTrips)
{
    TempDir dir("manifest");
    fs::create_directories(dir.path());
    SweepManifest m;
    m.sweepId = 0xdeadbeefcafeull;
    m.numTasks = 40;
    m.interrupted = true;
    m.completed[3] = 0x111;
    m.completed[17] = 0x222;
    m.failures.push_back({9, 4, "injected-fault",
                          "injected failure of task 9\nwith newline"});
    const std::string path =
        SweepManifest::pathFor(dir.path(), m.sweepId);
    ASSERT_TRUE(m.save(path));

    const auto back = SweepManifest::load(path);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->sweepId, m.sweepId);
    EXPECT_EQ(back->numTasks, 40u);
    EXPECT_TRUE(back->interrupted);
    EXPECT_EQ(back->completed, m.completed);
    ASSERT_EQ(back->failures.size(), 1u);
    EXPECT_EQ(back->failures[0].index, 9u);
    EXPECT_EQ(back->failures[0].attempts, 4);
    EXPECT_EQ(back->failures[0].code, "injected-fault");
    // Newlines are flattened so one failure = one manifest line.
    EXPECT_EQ(back->failures[0].message,
              "injected failure of task 9 with newline");
}

TEST(Checkpoint, MalformedManifestReadsAsAbsent)
{
    TempDir dir("badmanifest");
    fs::create_directories(dir.path());
    const std::string path = dir.path() + "/sweep-1.manifest";
    std::ofstream(path) << "not a manifest\n";
    EXPECT_FALSE(SweepManifest::load(path).has_value());
}

TEST(Checkpoint, ProgressIgnoresManifestOfDifferentSweep)
{
    TempDir dir("othersweep");
    fs::create_directories(dir.path());
    SweepManifest other;
    other.sweepId = 1;
    other.numTasks = 10;
    other.completed[0] = 1;
    const std::string path = SweepManifest::pathFor(dir.path(), 2);
    ASSERT_TRUE(other.save(path));
    // Same path, different sweep id: must not adopt.
    SweepProgress progress(path, /*sweep_id=*/2, /*num_tasks=*/10, 4);
    EXPECT_EQ(progress.adoptExisting(), 0u);
}

TEST(Checkpoint, FailuresAreNotAdoptedOnResume)
{
    TempDir dir("failadopt");
    fs::create_directories(dir.path());
    SweepManifest m;
    m.sweepId = 7;
    m.numTasks = 5;
    m.completed[1] = 0xabc;
    m.failures.push_back({4, 2, "unknown", "flaky"});
    const std::string path = SweepManifest::pathFor(dir.path(), 7);
    ASSERT_TRUE(m.save(path));
    SweepProgress progress(path, 7, 5, 4);
    EXPECT_EQ(progress.adoptExisting(), 1u);
    // The quarantined task gets a fresh chance on resume.
    EXPECT_TRUE(progress.failures().empty());
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

TEST(FaultSpec, ParsesTheFullGrammar)
{
    const FaultSpec s = FaultSpec::parse(
        "seed=9,cache_corrupt=0.25,task_fail=0.5,task_fail_attempts=2,"
        "task_kill=3;11,cg_noconv=0;4,cg_noconv_p=0.1,delay=0.75,"
        "delay_ms=5");
    EXPECT_EQ(s.seed, 9u);
    EXPECT_DOUBLE_EQ(s.cacheCorrupt, 0.25);
    EXPECT_DOUBLE_EQ(s.taskFail, 0.5);
    EXPECT_EQ(s.taskFailAttempts, 2);
    EXPECT_EQ(s.taskKill, (std::vector<std::uint64_t>{3, 11}));
    EXPECT_EQ(s.cgNoconv, (std::vector<std::uint64_t>{0, 4}));
    EXPECT_DOUBLE_EQ(s.cgNoconvP, 0.1);
    EXPECT_DOUBLE_EQ(s.delay, 0.75);
    EXPECT_EQ(s.delayMs, 5);
    EXPECT_TRUE(s.any());
    EXPECT_FALSE(FaultSpec::parse("").any());
    EXPECT_FALSE(FaultSpec::parse("seed=4").any());
}

TEST(FaultSpec, MalformedSpecsRaiseConfigErrors)
{
    for (const char *bad :
         {"task_fail", "task_fail=2.0", "task_fail=x", "bogus_key=1",
          "cache_corrupt=-0.1", "task_kill=1;x"}) {
        try {
            FaultSpec::parse(bad);
            FAIL() << "expected Error(Config) for '" << bad << "'";
        } catch (const Error &e) {
            EXPECT_EQ(e.code(), ErrorCode::Config) << bad;
        }
    }
}

TEST(FaultInjector, DecisionsAreDeterministic)
{
    FaultInjector::ScopedSpec spec("seed=5,task_fail=0.4");
    auto &inj = FaultInjector::global();
    ASSERT_TRUE(inj.active());
    int hits = 0;
    for (std::uint64_t i = 0; i < 64; ++i) {
        const bool first = inj.injectTaskFailure(i, 0);
        // Re-querying the same (task, attempt) never flips.
        EXPECT_EQ(inj.injectTaskFailure(i, 0), first);
        // Attempt 1 is beyond the default task_fail_attempts=1 budget.
        EXPECT_FALSE(inj.injectTaskFailure(i, 1));
        hits += first ? 1 : 0;
    }
    // ~40% of 64: deterministic, but sanity-check the ballpark.
    EXPECT_GT(hits, 10);
    EXPECT_LT(hits, 54);
}

TEST(FaultInjector, ScopedSpecRestoresThePreviousSpec)
{
    FaultInjector::ScopedSpec outer("task_fail=1.0");
    EXPECT_TRUE(FaultInjector::global().active());
    {
        FaultInjector::ScopedSpec inner("");
        EXPECT_FALSE(FaultInjector::global().active());
    }
    EXPECT_TRUE(FaultInjector::global().active());
    EXPECT_EQ(FaultInjector::global().spec(), "task_fail=1.0");
}

TEST(FaultInjector, CorruptedPayloadsFailToDecode)
{
    FaultInjector::ScopedSpec spec("cache_corrupt=1.0");
    std::vector<std::uint8_t> payload;
    {
        BinaryWriter w;
        w.vecF64({1.0, 2.0, 3.0});
        payload = w.bytes();
    }
    const std::vector<std::uint8_t> original = payload;
    ASSERT_TRUE(FaultInjector::global().maybeCorruptCachePayload(
        "some-key", payload));
    EXPECT_NE(payload, original);
    BinaryReader r(payload);
    EXPECT_THROW((void)r.vecF64(), SerializeError);
}

TEST(FaultInjector, InjectedTaskFailuresAreRecoveredByRetry)
{
    // End-to-end: every task fails its first attempt, one retry each
    // recovers the full sweep.
    FaultInjector::ScopedSpec spec("task_fail=1.0");
    Metrics::global().reset();
    RunnerOptions opts;
    opts.maxRetries = 1;
    SweepRunner runner(opts);
    const auto out = runner.run<int>(
        6, nullptr, [](std::size_t i) { return static_cast<int>(i); },
        encodeInt, decodeInt);
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_EQ(out[i], static_cast<int>(i));
    const auto snap = Metrics::global().snapshot();
    EXPECT_EQ(snap.count("runner.retries"), 6u);
    EXPECT_EQ(snap.count("fault.task_failures"), 6u);
    EXPECT_EQ(snap.count("runner.failed"), 0u);
    Metrics::global().reset();
}

// ---------------------------------------------------------------------
// DiskCache degradation
// ---------------------------------------------------------------------

TEST(DiskCache, UnwritableDirectoryDegradesToAMissCache)
{
    // A path *under a regular file* cannot be created, even by root
    // (chmod-based read-only checks are bypassed when uid 0).
    TempDir dir("unwritable");
    fs::create_directories(dir.path());
    const std::string blocker = dir.path() + "/blocker";
    std::ofstream(blocker) << "x";
    DiskCache cache(blocker + "/cache", 1);
    EXPECT_TRUE(cache.persistenceDisabled());
    // Neither store nor load may throw out of a sweep task.
    EXPECT_NO_THROW(cache.store("key", {1, 2, 3}));
    EXPECT_FALSE(cache.load("key").has_value());
    EXPECT_EQ(cache.recordCount(), 0u);
}

TEST(DiskCache, MidRunStoreFailureDisablesPersistence)
{
    TempDir dir("midrun");
    DiskCache cache(dir.path(), 1);
    cache.store("a", {1});
    EXPECT_TRUE(cache.load("a").has_value());
    EXPECT_FALSE(cache.persistenceDisabled());
    // The directory vanishes mid-run (operator cleanup, quota purge).
    fs::remove_all(dir.path());
    EXPECT_NO_THROW(cache.store("b", {2}));
    EXPECT_TRUE(cache.persistenceDisabled());
    // Later stores are silent no-ops.
    EXPECT_NO_THROW(cache.store("c", {3}));
}

TEST(DiskCache, SweepStillCompletesWithAnUnwritableCache)
{
    FaultInjector::ScopedSpec quiet("");
    TempDir dir("degraded");
    fs::create_directories(dir.path());
    const std::string blocker = dir.path() + "/blocker";
    std::ofstream(blocker) << "x";
    RunnerOptions opts;
    opts.cacheDir = blocker + "/cache";
    SweepRunner runner(opts);
    const auto out = runner.run<int>(
        8, [](std::size_t i) { return "k" + std::to_string(i); },
        [](std::size_t i) { return static_cast<int>(i) + 1; }, encodeInt,
        decodeInt);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) + 1);
    EXPECT_TRUE(runner.diskCache()->persistenceDisabled());
}

} // namespace
} // namespace xylem::runtime
