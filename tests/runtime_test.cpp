/**
 * @file
 * Tests of the experiment runtime: work-stealing thread pool,
 * telemetry registry, persistent result cache, and sweep runner.
 * These suites (plus concurrency_test) are the ones CI re-runs under
 * ThreadSanitizer.
 */

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "runtime/disk_cache.hpp"
#include "runtime/metrics.hpp"
#include "runtime/serialize.hpp"
#include "runtime/sweep_runner.hpp"
#include "runtime/thread_pool.hpp"

namespace xylem::runtime {
namespace {

namespace fs = std::filesystem;

/** A unique, self-deleting temp directory per test. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_((fs::temp_directory_path() /
                 ("xylem_test_" + tag + "_" +
                  std::to_string(::getpid())))
                    .string())
    {
        fs::remove_all(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

TEST(ThreadPool, SubmitReturnsResults)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([i]() { return i * i; }));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ExceptionsPropagateThroughTheFuture)
{
    ThreadPool pool(2);
    auto fut = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
    EXPECT_THROW(fut.get(), std::runtime_error);
    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPool, GracefulShutdownRunsEverySubmittedTask)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(3);
        for (int i = 0; i < 200; ++i)
            pool.submit([&done]() { done.fetch_add(1); });
        // Destructor drains the queues before joining.
    }
    EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, UnbalancedTasksUseMultipleWorkers)
{
    ThreadPool pool(4);
    std::mutex mutex;
    std::set<std::thread::id> seen;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i) {
        futures.push_back(pool.submit([&, i]() {
            // A few long tasks and many short ones: the short ones
            // must get stolen by the otherwise idle workers.
            if (i % 16 == 0)
                std::this_thread::sleep_for(std::chrono::milliseconds(30));
            std::lock_guard<std::mutex> lock(mutex);
            seen.insert(std::this_thread::get_id());
        }));
    }
    for (auto &f : futures)
        f.get();
    EXPECT_GE(seen.size(), 2u);
}

TEST(ThreadPool, BoundedQueueStillCompletesEverything)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2, /*max_pending=*/4);
        for (int i = 0; i < 100; ++i)
            pool.submit([&done]() { done.fetch_add(1); });
    }
    EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexInlineAndPooled)
{
    std::vector<std::atomic<int>> hits(257);
    ThreadPool::parallelFor(nullptr, hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    ThreadPool pool(4);
    ThreadPool::parallelFor(&pool, hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 2);
}

TEST(ThreadPool, ParallelForPropagatesTaskExceptions)
{
    ThreadPool pool(4);
    EXPECT_THROW(ThreadPool::parallelFor(&pool, 64,
                                         [&](std::size_t i) {
                                             if (i == 13)
                                                 throw std::runtime_error(
                                                     "boom");
                                         }),
                 std::runtime_error);
}

TEST(ThreadPool, ResolveJobsHonoursEnvironment)
{
    ::setenv("XYLEM_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultJobs(), 3);
    EXPECT_EQ(ThreadPool::resolveJobs(0), 3);
    EXPECT_EQ(ThreadPool::resolveJobs(5), 5);
    ::setenv("XYLEM_JOBS", "bogus", 1);
    EXPECT_EQ(ThreadPool::defaultJobs(), 1);
    ::unsetenv("XYLEM_JOBS");
    EXPECT_EQ(ThreadPool::defaultJobs(), 1);
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

TEST(Metrics, CountersAccumulateAcrossThreads)
{
    Metrics::global().reset();
    auto &c = Metrics::global().counter("test.counter");
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&c]() {
            for (int i = 0; i < 1000; ++i)
                c.increment();
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(Metrics::global().snapshot().count("test.counter"), 4000u);
    Metrics::global().reset();
}

TEST(Metrics, TimingsAggregateMinMeanMax)
{
    Metrics::global().reset();
    Metrics::global().addTiming("test.timing", 0.5);
    Metrics::global().addTiming("test.timing", 1.5);
    Metrics::global().addTiming("test.timing", 1.0);
    const auto snap = Metrics::global().snapshot();
    const auto &t = snap.timings.at("test.timing");
    EXPECT_EQ(t.count, 3u);
    EXPECT_DOUBLE_EQ(t.totalSeconds, 3.0);
    EXPECT_DOUBLE_EQ(t.meanSeconds(), 1.0);
    EXPECT_DOUBLE_EQ(t.minSeconds, 0.5);
    EXPECT_DOUBLE_EQ(t.maxSeconds, 1.5);
    Metrics::global().reset();
}

TEST(Metrics, JsonContainsCountersAndTimings)
{
    Metrics::global().reset();
    Metrics::global().counter("json.counter").add(42);
    Metrics::global().addTiming("json.timing", 0.25);
    const std::string json = Metrics::global().toJson();
    EXPECT_NE(json.find("\"json.counter\":42"), std::string::npos);
    EXPECT_NE(json.find("\"json.timing\""), std::string::npos);
    Metrics::global().reset();
}

// ---------------------------------------------------------------------
// DiskCache
// ---------------------------------------------------------------------

TEST(DiskCache, RoundTripsPayloads)
{
    TempDir dir("roundtrip");
    DiskCache cache(dir.path(), 1);
    const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 0, 7};
    EXPECT_FALSE(cache.load("key-a").has_value());
    cache.store("key-a", payload);
    const auto back = cache.load("key-a");
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, payload);
    EXPECT_EQ(cache.recordCount(), 1u);
    // Overwrite under the same key.
    cache.store("key-a", {9});
    EXPECT_EQ(cache.load("key-a")->size(), 1u);
    EXPECT_EQ(cache.recordCount(), 1u);
}

TEST(DiskCache, VersionMismatchReadsAsMiss)
{
    TempDir dir("version");
    {
        DiskCache v1(dir.path(), 1);
        v1.store("key", {1, 2, 3});
        ASSERT_TRUE(v1.load("key").has_value());
    }
    DiskCache v2(dir.path(), 2);
    EXPECT_FALSE(v2.load("key").has_value());
    // And a v2 store heals the record for v2 readers.
    v2.store("key", {4, 5});
    EXPECT_TRUE(v2.load("key").has_value());
}

TEST(DiskCache, TruncatedRecordReadsAsMiss)
{
    TempDir dir("truncated");
    DiskCache cache(dir.path(), 1);
    cache.store("key", std::vector<std::uint8_t>(300, 0xAB));
    // Truncate the single record file roughly in half.
    for (const auto &entry : fs::directory_iterator(dir.path())) {
        fs::resize_file(entry.path(),
                        fs::file_size(entry.path()) / 2);
    }
    EXPECT_FALSE(cache.load("key").has_value());
    // A fresh store recovers.
    cache.store("key", {1});
    EXPECT_TRUE(cache.load("key").has_value());
}

TEST(DiskCache, CorruptPayloadFailsTheChecksum)
{
    TempDir dir("corrupt");
    DiskCache cache(dir.path(), 1);
    cache.store("key", std::vector<std::uint8_t>(64, 0x5A));
    for (const auto &entry : fs::directory_iterator(dir.path())) {
        std::fstream f(entry.path(),
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(-12, std::ios::end); // inside the payload/checksum
        f.put('\x00');
    }
    EXPECT_FALSE(cache.load("key").has_value());
}

TEST(DiskCache, EmptyRecordFileReadsAsMiss)
{
    TempDir dir("empty");
    DiskCache cache(dir.path(), 1);
    cache.store("key", {1, 2, 3});
    for (const auto &entry : fs::directory_iterator(dir.path()))
        fs::resize_file(entry.path(), 0);
    EXPECT_FALSE(cache.load("key").has_value());
}

TEST(DiskCache, ConcurrentStoresAndLoadsAgree)
{
    TempDir dir("concurrent");
    DiskCache cache(dir.path(), 1);
    const std::vector<std::uint8_t> payload(128, 0x33);
    std::atomic<int> bad{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&]() {
            for (int i = 0; i < 50; ++i) {
                cache.store("shared", payload);
                const auto got = cache.load("shared");
                // Concurrent replace: old or new record, never torn.
                if (got && *got != payload)
                    bad.fetch_add(1);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(bad.load(), 0);
    ASSERT_TRUE(cache.load("shared").has_value());
    EXPECT_EQ(*cache.load("shared"), payload);
}

// ---------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------

TEST(Serialize, RoundTripsEveryType)
{
    BinaryWriter w;
    w.u32(0xDEADBEEF);
    w.u64(1ull << 50);
    w.i32(-42);
    w.f64(3.141592653589793);
    w.boolean(true);
    w.str("hello");
    w.vecF64({1.5, -2.5});
    w.vecU64({7, 8, 9});
    BinaryReader r(w.bytes());
    EXPECT_EQ(r.u32(), 0xDEADBEEF);
    EXPECT_EQ(r.u64(), 1ull << 50);
    EXPECT_EQ(r.i32(), -42);
    EXPECT_DOUBLE_EQ(r.f64(), 3.141592653589793);
    EXPECT_TRUE(r.boolean());
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.vecF64(), (std::vector<double>{1.5, -2.5}));
    EXPECT_EQ(r.vecU64(), (std::vector<std::uint64_t>{7, 8, 9}));
    EXPECT_TRUE(r.atEnd());
}

TEST(Serialize, ThrowsOnTruncationAndBogusLengths)
{
    BinaryWriter w;
    w.u64(1u << 20); // a length prefix promising a megabyte
    BinaryReader r(w.bytes());
    EXPECT_THROW(r.vecF64(), SerializeError);
    BinaryReader r2(w.bytes().data(), 3);
    EXPECT_THROW(r2.u64(), SerializeError);
}

// ---------------------------------------------------------------------
// SweepRunner
// ---------------------------------------------------------------------

void
encodeInt(BinaryWriter &w, const int &v)
{
    w.i32(v);
}

int
decodeInt(BinaryReader &r)
{
    return r.i32();
}

TEST(SweepRunner, ResultsComeBackInIndexOrder)
{
    RunnerOptions opts;
    opts.jobs = 4;
    SweepRunner runner(opts);
    const auto out = runner.run<int>(
        100, nullptr,
        [](std::size_t i) { return static_cast<int>(i) * 3; }, encodeInt,
        decodeInt);
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) * 3);
}

TEST(SweepRunner, SecondRunIsServedFromTheDiskCache)
{
    TempDir dir("sweepcache");
    RunnerOptions opts;
    opts.jobs = 2;
    opts.cacheDir = dir.path();
    std::atomic<int> computes{0};
    auto key = [](std::size_t i) {
        return "task-" + std::to_string(i);
    };
    auto compute = [&computes](std::size_t i) {
        computes.fetch_add(1);
        return static_cast<int>(i) + 10;
    };
    {
        SweepRunner runner(opts);
        const auto out =
            runner.run<int>(20, key, compute, encodeInt, decodeInt);
        EXPECT_EQ(out[19], 29);
    }
    EXPECT_EQ(computes.load(), 20);
    {
        SweepRunner runner(opts);
        const auto out =
            runner.run<int>(20, key, compute, encodeInt, decodeInt);
        EXPECT_EQ(out[19], 29);
    }
    EXPECT_EQ(computes.load(), 20) << "second run must not recompute";
}

TEST(SweepRunner, EmptyKeysAreNeverCached)
{
    TempDir dir("uncachable");
    RunnerOptions opts;
    opts.cacheDir = dir.path();
    std::atomic<int> computes{0};
    auto compute = [&computes](std::size_t i) {
        computes.fetch_add(1);
        return static_cast<int>(i);
    };
    auto key = [](std::size_t) { return std::string(); };
    SweepRunner runner(opts);
    runner.run<int>(5, key, compute, encodeInt, decodeInt);
    runner.run<int>(5, key, compute, encodeInt, decodeInt);
    EXPECT_EQ(computes.load(), 10);
    EXPECT_EQ(runner.diskCache()->recordCount(), 0u);
}

TEST(SweepRunner, StaleVersionRecordsRecompute)
{
    TempDir dir("stale");
    auto key = [](std::size_t i) { return "k" + std::to_string(i); };
    {
        // Simulate an older build writing the same keys.
        DiskCache old(dir.path(), kResultCacheVersion + 1000);
        BinaryWriter w;
        w.i32(999);
        old.store("k0", w.bytes());
    }
    RunnerOptions opts;
    opts.cacheDir = dir.path();
    SweepRunner runner(opts);
    const auto out = runner.run<int>(
        1, key, [](std::size_t) { return 5; }, encodeInt, decodeInt);
    EXPECT_EQ(out[0], 5) << "stale record must not be decoded";
}

TEST(SweepRunner, TaskExceptionsPropagate)
{
    RunnerOptions opts;
    opts.jobs = 3;
    SweepRunner runner(opts);
    EXPECT_THROW(runner.run<int>(
                     10, nullptr,
                     [](std::size_t i) -> int {
                         if (i == 7)
                             throw std::runtime_error("task 7 failed");
                         return 0;
                     },
                     encodeInt, decodeInt),
                 std::runtime_error);
}

} // namespace
} // namespace xylem::runtime
