/**
 * @file
 * Concurrency contracts of the core pipeline: `GridModel::solveSteady`
 * is const and callable from many threads at once with results
 * identical to serial, and the simulation cache survives concurrent
 * mixed `cachedSimulate` / `clearSimCache` calls. These suites (all
 * named Concurrent*) are re-run under ThreadSanitizer in CI together
 * with the runtime_test suites.
 */

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cpu/multicore.hpp"
#include "stack/stack.hpp"
#include "thermal/grid_model.hpp"
#include "workloads/profile.hpp"
#include "xylem/sim_cache.hpp"

namespace xylem {
namespace {

using geometry::Rect;

stack::BuiltStack
smallStack()
{
    stack::StackSpec spec;
    spec.numDramDies = 2;
    spec.gridNx = 24;
    spec.gridNy = 24;
    return stack::buildStack(spec);
}

thermal::PowerMap
cornerPower(const stack::BuiltStack &stk, double watts)
{
    thermal::PowerMap power(stk);
    power.deposit(stk.procMetal, Rect{0.2e-3, 0.2e-3, 2e-3, 2e-3},
                  watts * 0.4);
    power.deposit(stk.procMetal, stk.grid.extent(), watts * 0.6);
    return power;
}

TEST(ConcurrentSolve, ManyThreadsMatchSerialExactly)
{
    const auto stk = smallStack();
    const thermal::GridModel model(stk, {});

    // Serial references: one distinct power map per future thread.
    const int kThreads = 8;
    std::vector<thermal::PowerMap> powers;
    std::vector<std::vector<double>> serial;
    for (int t = 0; t < kThreads; ++t) {
        powers.push_back(cornerPower(stk, 8.0 + t));
        serial.push_back(model.solveSteady(powers.back()).nodes());
    }

    // The same solves concurrently against the one shared model. CG is
    // deterministic, so the node vectors must match bit for bit.
    std::vector<std::vector<double>> parallel(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t]() {
            parallel[static_cast<std::size_t>(t)] =
                model.solveSteady(powers[static_cast<std::size_t>(t)])
                    .nodes();
        });
    }
    for (auto &t : threads)
        t.join();

    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(parallel[static_cast<std::size_t>(t)],
                  serial[static_cast<std::size_t>(t)])
            << "thread " << t << " diverged from the serial solve";
}

TEST(ConcurrentSolve, RepeatedSolvesOfOneProblemAgree)
{
    const auto stk = smallStack();
    const thermal::GridModel model(stk, {});
    const thermal::PowerMap power = cornerPower(stk, 12.0);
    const std::vector<double> reference =
        model.solveSteady(power).nodes();

    std::vector<std::thread> threads;
    std::vector<std::vector<double>> results(6);
    for (std::size_t t = 0; t < results.size(); ++t) {
        threads.emplace_back([&, t]() {
            results[t] = model.solveSteady(power).nodes();
        });
    }
    for (auto &t : threads)
        t.join();
    for (const auto &r : results)
        EXPECT_EQ(r, reference);
}

TEST(ConcurrentSimCache, MixedSimulateAndClearCalls)
{
    core::clearSimCache();
    cpu::MulticoreConfig cfg;
    cfg.instsPerThread = 20000;
    cfg.warmupInsts = 20000;
    const auto &compute = workloads::profileByName("LU(NAS)");
    const auto &memory = workloads::profileByName("IS");

    // Serial references for the two keys.
    const core::SimResultPtr ref_a =
        core::cachedSimulate(cfg, cpu::allCoresRunning(compute));
    const core::SimResultPtr ref_b =
        core::cachedSimulate(cfg, cpu::allCoresRunning(memory));
    core::clearSimCache();

    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 6; ++t) {
        threads.emplace_back([&, t]() {
            for (int i = 0; i < 8; ++i) {
                const auto &app = (t + i) % 2 == 0 ? compute : memory;
                const auto &ref = (t + i) % 2 == 0 ? ref_a : ref_b;
                const core::SimResultPtr got = core::cachedSimulate(
                    cfg, cpu::allCoresRunning(app));
                // The returned pointer must stay valid and equal to
                // the serial result even when another thread clears
                // the cache mid-flight.
                if (got->seconds != ref->seconds ||
                    got->cores.size() != ref->cores.size())
                    mismatches.fetch_add(1);
                if (t == 0 && i % 3 == 0)
                    core::clearSimCache();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(mismatches.load(), 0);
    core::clearSimCache();
}

TEST(ConcurrentSimCache, ComputeOnceUnderContention)
{
    core::clearSimCache();
    cpu::MulticoreConfig cfg;
    cfg.instsPerThread = 20000;
    cfg.warmupInsts = 20000;
    const auto &app = workloads::profileByName("LU(NAS)");
    const auto threads_spec = cpu::allCoresRunning(app);

    // All racers ask for the same key; they must all observe the one
    // object computed by whichever thread got there first.
    std::vector<core::SimResultPtr> results(8);
    std::vector<std::thread> racers;
    for (std::size_t t = 0; t < results.size(); ++t) {
        racers.emplace_back([&, t]() {
            results[t] = core::cachedSimulate(cfg, threads_spec);
        });
    }
    for (auto &t : racers)
        t.join();
    for (std::size_t t = 1; t < results.size(); ++t)
        EXPECT_EQ(results[t].get(), results[0].get());
    core::clearSimCache();
}

} // namespace
} // namespace xylem
