/**
 * @file
 * Integration tests of the full Xylem pipeline: simulation -> power ->
 * thermal, frequency boosting, λ-aware core-set boosting and the
 * transient migration runner. All tests use a shrunk configuration
 * (coarser grid, fewer DRAM dies, shorter simulations) for speed.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "workloads/profile.hpp"
#include "xylem/migration.hpp"
#include "xylem/sim_cache.hpp"
#include "xylem/system.hpp"

namespace xylem::core {
namespace {

SystemConfig
smallConfig(stack::Scheme scheme = stack::Scheme::Base)
{
    SystemConfig cfg;
    cfg.stackSpec.scheme = scheme;
    cfg.stackSpec.numDramDies = 4;
    cfg.stackSpec.gridNx = 40;
    cfg.stackSpec.gridNy = 40;
    cfg.cpu.instsPerThread = 80000;
    // Short measured runs need a full warm-up or cold misses dominate.
    cfg.cpu.warmupInsts = 250000;
    return cfg;
}

const workloads::Profile &
computeApp()
{
    return workloads::profileByName("LU(NAS)");
}

const workloads::Profile &
memoryApp()
{
    return workloads::profileByName("IS");
}

TEST(StackSystem, EvaluateProducesSaneNumbers)
{
    StackSystem sys(smallConfig());
    const EvalResult r = sys.evaluate(computeApp(), 2.4);

    EXPECT_GT(r.procPowerTotal, 8.0);   // §6.2: 8-24 W
    EXPECT_LT(r.procPowerTotal, 24.0);
    EXPECT_GT(r.dramPowerTotal, 1.0);
    EXPECT_LT(r.dramPowerTotal, 4.5);
    EXPECT_NEAR(r.stackPowerTotal, r.procPowerTotal + r.dramPowerTotal,
                1e-9);

    const double ambient = sys.config().solver.ambientCelsius;
    EXPECT_GT(r.procHotspot, ambient + 10.0);
    EXPECT_LT(r.procHotspot, 130.0);
    // The processor is the farthest layer from the sink: hotter than
    // the bottom DRAM die.
    EXPECT_GT(r.procHotspot, r.dramBottomHotspot);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_EQ(r.coreHotspot.size(), 8u);
    for (double t : r.coreHotspot) {
        EXPECT_GT(t, ambient);
        EXPECT_LE(t, r.procHotspot + 1e-9);
    }
}

TEST(StackSystem, ComputeAppIsHotterThanMemoryApp)
{
    StackSystem sys(smallConfig());
    const EvalResult hot = sys.evaluate(computeApp(), 2.4);
    sys.clearWarmStart();
    const EvalResult cool = sys.evaluate(memoryApp(), 2.4);
    EXPECT_GT(hot.procHotspot, cool.procHotspot + 3.0);
    EXPECT_GT(hot.procPowerTotal, cool.procPowerTotal + 3.0);
    // Memory app pushes more power into the DRAM dies.
    EXPECT_GT(cool.dramPowerTotal, hot.dramPowerTotal);
}

TEST(StackSystem, TemperatureRisesWithFrequency)
{
    StackSystem sys(smallConfig());
    double prev = 0.0;
    for (double f : {2.4, 2.8, 3.2}) {
        const EvalResult r = sys.evaluate(computeApp(), f);
        EXPECT_GT(r.procHotspot, prev);
        prev = r.procHotspot;
    }
}

TEST(StackSystem, PerformanceRisesWithFrequency)
{
    StackSystem sys(smallConfig());
    const EvalResult slow = sys.evaluate(computeApp(), 2.4);
    const EvalResult fast = sys.evaluate(computeApp(), 3.2);
    // +33% frequency turns into a clear speedup, reduced by the
    // frequency-independent DRAM stalls.
    EXPECT_GT(fast.performance(), slow.performance() * 1.1);
    EXPECT_LT(fast.performance(), slow.performance() * 3.2 / 2.4);
}

TEST(StackSystem, WarmStartDoesNotChangeResults)
{
    StackSystem sys(smallConfig());
    sys.evaluate(memoryApp(), 2.4); // populate the warm-start field
    const EvalResult warm = sys.evaluate(computeApp(), 3.0);
    sys.clearWarmStart();
    const EvalResult cold = sys.evaluate(computeApp(), 3.0);
    EXPECT_NEAR(warm.procHotspot, cold.procHotspot, 0.02);
}

TEST(StackSystem, XylemSchemesReduceTemperatureInOrder)
{
    StackSystem base(smallConfig(stack::Scheme::Base));
    StackSystem bank(smallConfig(stack::Scheme::Bank));
    StackSystem banke(smallConfig(stack::Scheme::BankE));
    StackSystem prior(smallConfig(stack::Scheme::Prior));

    const double t_base = base.evaluate(computeApp(), 2.4).procHotspot;
    const double t_bank = bank.evaluate(computeApp(), 2.4).procHotspot;
    const double t_banke = banke.evaluate(computeApp(), 2.4).procHotspot;
    const double t_prior = prior.evaluate(computeApp(), 2.4).procHotspot;

    EXPECT_LT(t_banke, t_bank);          // custom beats generic
    EXPECT_LT(t_bank, t_base - 1.0);     // Xylem clearly beats base
    EXPECT_NEAR(t_prior, t_base, 0.6);   // TTSVs alone achieve little
}

TEST(StackSystem, DramTemperatureAlsoDrops)
{
    StackSystem base(smallConfig(stack::Scheme::Base));
    StackSystem banke(smallConfig(stack::Scheme::BankE));
    const double d_base =
        base.evaluate(computeApp(), 2.4).dramBottomHotspot;
    const double d_banke =
        banke.evaluate(computeApp(), 2.4).dramBottomHotspot;
    EXPECT_LT(d_banke, d_base - 0.5);
}

TEST(StackSystem, EnergyAccounting)
{
    StackSystem sys(smallConfig());
    const EvalResult r = sys.evaluate(computeApp(), 2.4);
    EXPECT_NEAR(r.stackEnergy(), r.stackPowerTotal * r.seconds, 1e-12);
}

// ---------------------------------------------------------------------
// Frequency boosting
// ---------------------------------------------------------------------

TEST(Boost, InfeasibleWhenCapBelowBaseTemperature)
{
    StackSystem sys(smallConfig());
    const EvalResult r = sys.evaluate(computeApp(), 2.4);
    const BoostResult boost = sys.maxUniformFrequency(
        computeApp(), r.procHotspot - 5.0, 1e9);
    EXPECT_FALSE(boost.feasible);
}

TEST(Boost, FindsTheHighestFrequencyUnderTheCap)
{
    StackSystem sys(smallConfig(stack::Scheme::BankE));
    const EvalResult at24 = sys.evaluate(computeApp(), 2.4);
    const BoostResult boost = sys.maxUniformFrequency(
        computeApp(), at24.procHotspot + 4.0, 1e9);
    ASSERT_TRUE(boost.feasible);
    EXPECT_GT(boost.freqGHz, 2.4);
    EXPECT_LE(boost.eval.procHotspot, at24.procHotspot + 4.0);
    // The next step up must violate the cap (or be off-table).
    if (boost.freqGHz < 3.5 - 1e-9) {
        const EvalResult next =
            sys.evaluate(computeApp(), boost.freqGHz + 0.1);
        EXPECT_GT(next.procHotspot, at24.procHotspot + 4.0);
    }
}

TEST(Boost, HigherCapNeverLowersTheFrequency)
{
    StackSystem sys(smallConfig(stack::Scheme::Bank));
    const EvalResult r = sys.evaluate(computeApp(), 2.4);
    const BoostResult small_cap = sys.maxUniformFrequency(
        computeApp(), r.procHotspot + 2.0, 1e9);
    const BoostResult big_cap = sys.maxUniformFrequency(
        computeApp(), r.procHotspot + 8.0, 1e9);
    ASSERT_TRUE(small_cap.feasible);
    ASSERT_TRUE(big_cap.feasible);
    EXPECT_GE(big_cap.freqGHz, small_cap.freqGHz);
}

TEST(Boost, DramCapCanBeTheBindingConstraint)
{
    StackSystem sys(smallConfig(stack::Scheme::Bank));
    const EvalResult r = sys.evaluate(computeApp(), 2.4);
    const BoostResult loose = sys.maxUniformFrequency(
        computeApp(), r.procHotspot + 6.0, 1e9);
    const BoostResult tight = sys.maxUniformFrequency(
        computeApp(), r.procHotspot + 6.0, r.dramBottomHotspot + 1.0);
    ASSERT_TRUE(loose.feasible);
    if (tight.feasible) {
        EXPECT_LE(tight.freqGHz, loose.freqGHz);
    }
}

TEST(Boost, XylemEnablesAHigherFrequencyThanBase)
{
    // The headline §7.3 effect at small scale: at the same cap, banke
    // reaches a frequency at least as high as base, typically higher.
    SystemConfig cfg = smallConfig(stack::Scheme::Base);
    StackSystem base(cfg);
    const double cap = base.evaluate(computeApp(), 2.4).procHotspot;

    StackSystem banke(smallConfig(stack::Scheme::BankE));
    const BoostResult boosted =
        banke.maxUniformFrequency(computeApp(), cap + 1e-9, 1e9);
    ASSERT_TRUE(boosted.feasible);
    EXPECT_GE(boosted.freqGHz, 2.5);
}

// ---------------------------------------------------------------------
// λ-aware boosting of a core subset
// ---------------------------------------------------------------------

TEST(CoreBoost, InnerCoresCanBeBoostedBeyondTheUniformPoint)
{
    StackSystem sys(smallConfig(stack::Scheme::BankE));
    const auto threads = cpu::allCoresRunning(computeApp());
    const EvalResult at24 = sys.evaluate(threads,
                                         std::vector<double>(8, 2.4));
    const double cap = at24.procHotspot + 3.0;
    const BoostResult uniform = sys.maxUniformFrequency(threads, cap, 1e9);
    ASSERT_TRUE(uniform.feasible);
    const BoostResult multi = sys.maxFrequencyOnCores(
        threads, sys.builtStack().procDie.innerCores, uniform.freqGHz,
        cap, 1e9);
    ASSERT_TRUE(multi.feasible);
    EXPECT_GE(multi.freqGHz, uniform.freqGHz);
    EXPECT_LE(multi.eval.procHotspot, cap);
}

TEST(CoreBoost, RejectsInvalidCoreIndices)
{
    StackSystem sys(smallConfig());
    const auto threads = cpu::allCoresRunning(computeApp());
    EXPECT_THROW(
        sys.maxFrequencyOnCores(threads, {42}, 2.4, 100.0, 95.0),
        PanicError);
}

// ---------------------------------------------------------------------
// Transient migration
// ---------------------------------------------------------------------

TEST(Migration, ProducesABoundedTrace)
{
    StackSystem sys(smallConfig(stack::Scheme::BankE));
    MigrationOptions opts;
    opts.numPhases = 4;
    opts.stepsPerPhase = 3;
    opts.warmupPhases = 1;
    const MigrationResult r = runMigration(
        sys, computeApp(), sys.builtStack().procDie.innerCores, opts);
    EXPECT_EQ(r.trace.size(), 12u);
    EXPECT_GT(r.avgHotspot, sys.config().solver.ambientCelsius);
    EXPECT_GE(r.maxHotspot, r.avgHotspot);
    // The transient trace must stay in a physically plausible band.
    for (double t : r.trace) {
        EXPECT_GT(t, 40.0);
        EXPECT_LT(t, 130.0);
    }
}

TEST(Migration, RequiresEnoughCores)
{
    StackSystem sys(smallConfig());
    MigrationOptions opts;
    opts.numThreads = 2;
    EXPECT_THROW(runMigration(sys, computeApp(), {0, 1}, opts),
                 PanicError);
}

TEST(Migration, InnerCoresRunCoolerUnderBankE)
{
    StackSystem sys(smallConfig(stack::Scheme::BankE));
    MigrationOptions opts;
    opts.numPhases = 4;
    opts.stepsPerPhase = 4;
    opts.warmupPhases = 2;
    const auto &die = sys.builtStack().procDie;
    const MigrationResult inner =
        runMigration(sys, computeApp(), die.innerCores, opts);
    const MigrationResult outer =
        runMigration(sys, computeApp(), die.outerCores, opts);
    EXPECT_LT(inner.avgHotspot, outer.avgHotspot + 0.3);
}

// ---------------------------------------------------------------------
// Simulation cache
// ---------------------------------------------------------------------

TEST(SimCache, ReturnsTheSameResultObject)
{
    clearSimCache();
    cpu::MulticoreConfig cfg;
    cfg.instsPerThread = 20000;
    cfg.warmupInsts = 20000;
    const auto threads = cpu::allCoresRunning(computeApp());
    const SimResultPtr a = cachedSimulate(cfg, threads);
    const SimResultPtr b = cachedSimulate(cfg, threads);
    EXPECT_EQ(a.get(), b.get());
}

TEST(SimCache, ResultsSurviveAClear)
{
    clearSimCache();
    cpu::MulticoreConfig cfg;
    cfg.instsPerThread = 20000;
    cfg.warmupInsts = 20000;
    const auto threads = cpu::allCoresRunning(computeApp());
    const SimResultPtr a = cachedSimulate(cfg, threads);
    const double seconds = a->seconds;
    clearSimCache();
    // The old result stays owned by `a`; a fresh simulation under the
    // same key produces a distinct but identical object.
    const SimResultPtr b = cachedSimulate(cfg, threads);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(a->seconds, seconds);
    EXPECT_EQ(b->seconds, seconds);
}

TEST(SimCache, DistinguishesFrequenciesAndPlacements)
{
    clearSimCache();
    cpu::MulticoreConfig cfg;
    cfg.instsPerThread = 20000;
    cfg.warmupInsts = 20000;
    const auto threads = cpu::allCoresRunning(computeApp());
    const SimResultPtr a = cachedSimulate(cfg, threads);
    cfg.coreFreqGHz[0] = 3.5;
    const SimResultPtr b = cachedSimulate(cfg, threads);
    EXPECT_NE(a.get(), b.get());
    const std::vector<cpu::ThreadSpec> other = {{&computeApp(), 3}};
    const SimResultPtr c = cachedSimulate(cfg, other);
    EXPECT_NE(b.get(), c.get());
}

} // namespace
} // namespace xylem::core
