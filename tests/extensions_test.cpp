/**
 * @file
 * Tests for the extension features: λ-aware scheduling policies, DTM
 * throttling, DRAM refresh-temperature coupling, the electrothermal
 * leakage loop, and the heatmap renderer.
 */

#include <algorithm>
#include <iomanip>
#include <locale>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "thermal/heatmap.hpp"
#include "workloads/profile.hpp"
#include "xylem/dtm.hpp"
#include "xylem/policies.hpp"
#include "xylem/system.hpp"

namespace xylem::core {
namespace {

SystemConfig
smallConfig(stack::Scheme scheme = stack::Scheme::BankE)
{
    SystemConfig cfg;
    cfg.stackSpec.scheme = scheme;
    cfg.stackSpec.numDramDies = 4;
    cfg.stackSpec.gridNx = 40;
    cfg.stackSpec.gridNy = 40;
    cfg.cpu.instsPerThread = 60000;
    cfg.cpu.warmupInsts = 200000;
    return cfg;
}

stack::BuiltStack
smallStack(stack::Scheme scheme)
{
    stack::StackSpec spec;
    spec.scheme = scheme;
    spec.numDramDies = 2;
    spec.gridNx = 40;
    spec.gridNy = 40;
    return stack::buildStack(spec);
}

// ---------------------------------------------------------------------
// λ-aware policies
// ---------------------------------------------------------------------

TEST(Policies, BaseAndPriorHaveNoHeterogeneity)
{
    for (stack::Scheme s : {stack::Scheme::Base, stack::Scheme::Prior}) {
        const auto stk = smallStack(s);
        for (double v : coreConductivityScores(stk))
            EXPECT_DOUBLE_EQ(v, 0.0);
    }
}

TEST(Policies, BankeScoresFavourTheInnerCores)
{
    const auto stk = smallStack(stack::Scheme::BankE);
    const auto scores = coreConductivityScores(stk);
    ASSERT_EQ(scores.size(), 8u);
    double inner_sum = 0, outer_sum = 0;
    for (int c : stk.procDie.innerCores)
        inner_sum += scores[static_cast<std::size_t>(c)];
    for (int c : stk.procDie.outerCores)
        outer_sum += scores[static_cast<std::size_t>(c)];
    EXPECT_GT(inner_sum, outer_sum);
    // Normalised: the best core scores exactly 1.
    EXPECT_DOUBLE_EQ(*std::max_element(scores.begin(), scores.end()),
                     1.0);
}

TEST(Policies, ConductivityOrderIsAPermutation)
{
    const auto stk = smallStack(stack::Scheme::Bank);
    const auto order = coresByConductivity(stk);
    std::set<int> seen(order.begin(), order.end());
    EXPECT_EQ(seen.size(), 8u);
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Policies, ThermalDemandOrdersComputeAboveMemory)
{
    EXPECT_GT(thermalDemand(workloads::profileByName("LU(NAS)")),
              thermalDemand(workloads::profileByName("IS")));
    EXPECT_GT(thermalDemand(workloads::profileByName("Cholesky")),
              thermalDemand(workloads::profileByName("FT")));
}

TEST(Policies, PlacementPutsHotThreadsOnInnerCoresUnderBankE)
{
    const auto stk = smallStack(stack::Scheme::BankE);
    const auto &lu = workloads::profileByName("LU(NAS)");
    const auto &is = workloads::profileByName("IS");
    const std::vector<const workloads::Profile *> threads = {
        &is, &lu, &is, &lu, &is, &lu, &is, &lu};
    const auto placement = lambdaAwarePlacement(stk, threads);
    ASSERT_EQ(placement.size(), 8u);

    // Every thread keeps its profile, cores are all distinct...
    std::set<int> cores;
    for (std::size_t i = 0; i < placement.size(); ++i) {
        EXPECT_EQ(placement[i].profile, threads[i]);
        cores.insert(placement[i].core);
    }
    EXPECT_EQ(cores.size(), 8u);

    // ...and the LU threads landed on better-cooled cores on average.
    const auto scores = coreConductivityScores(stk);
    double lu_score = 0, is_score = 0;
    for (const auto &t : placement) {
        (t.profile == &lu ? lu_score : is_score) +=
            scores[static_cast<std::size_t>(t.core)];
    }
    EXPECT_GT(lu_score, is_score);
}

TEST(Policies, PlacementRejectsTooManyThreads)
{
    const auto stk = smallStack(stack::Scheme::Bank);
    const auto &p = workloads::profileByName("FFT");
    std::vector<const workloads::Profile *> too_many(9, &p);
    EXPECT_THROW(lambdaAwarePlacement(stk, too_many), PanicError);
}

TEST(Policies, BoostAndMigrationSets)
{
    const auto stk = smallStack(stack::Scheme::BankE);
    const auto boost = lambdaAwareBoostSet(stk, 4);
    ASSERT_EQ(boost.size(), 4u);
    // The four best-cooled cores are the inner cores.
    const std::set<int> expected(stk.procDie.innerCores.begin(),
                                 stk.procDie.innerCores.end());
    EXPECT_EQ(std::set<int>(boost.begin(), boost.end()), expected);
    EXPECT_EQ(lambdaAwareMigrationSet(stk, 4), boost);
    EXPECT_THROW(lambdaAwareBoostSet(stk, 9), PanicError);
}

// ---------------------------------------------------------------------
// DTM
// ---------------------------------------------------------------------

TEST(Dtm, GrantsTheRequestWhenCool)
{
    StackSystem sys(smallConfig());
    const auto &app = workloads::profileByName("IS"); // cool workload
    const DtmResult r = throttleToCaps(sys, app, 2.6, 100.0, 95.0);
    EXPECT_TRUE(r.feasible);
    EXPECT_FALSE(r.throttled);
    EXPECT_DOUBLE_EQ(r.grantedGHz, 2.6);
    EXPECT_LE(r.eval.procHotspot, 100.0);
}

TEST(Dtm, ThrottlesAHotRequest)
{
    StackSystem sys(smallConfig(stack::Scheme::Base));
    const auto &app = workloads::profileByName("LU(NAS)");
    const EvalResult at24 = sys.evaluate(app, 2.4);
    // Pick a cap 2 steps of headroom above 2.4 GHz and request 3.5.
    const DtmResult r =
        throttleToCaps(sys, app, 3.5, at24.procHotspot + 2.5, 1e9);
    ASSERT_TRUE(r.feasible);
    EXPECT_TRUE(r.throttled);
    EXPECT_LT(r.grantedGHz, 3.5);
    EXPECT_GE(r.grantedGHz, 2.4);
    EXPECT_LE(r.eval.procHotspot, at24.procHotspot + 2.5);
}

TEST(Dtm, ReportsInfeasibleCaps)
{
    StackSystem sys(smallConfig(stack::Scheme::Base));
    const auto &app = workloads::profileByName("LU(NAS)");
    const EvalResult at24 = sys.evaluate(app, 2.4);
    const DtmResult r =
        throttleToCaps(sys, app, 3.5, at24.procHotspot - 10.0, 1e9);
    EXPECT_FALSE(r.feasible);
    EXPECT_TRUE(r.throttled);
    EXPECT_DOUBLE_EQ(r.grantedGHz, 2.4);
}

// ---------------------------------------------------------------------
// Refresh-temperature coupling
// ---------------------------------------------------------------------

TEST(RefreshCoupling, JedecScaleSteps)
{
    EXPECT_DOUBLE_EQ(jedecRefreshScale(60.0), 1.0);
    EXPECT_DOUBLE_EQ(jedecRefreshScale(85.0), 1.0);
    EXPECT_DOUBLE_EQ(jedecRefreshScale(86.0), 0.5);
    EXPECT_DOUBLE_EQ(jedecRefreshScale(95.0), 0.5);
    EXPECT_DOUBLE_EQ(jedecRefreshScale(95.1), 0.25);
    EXPECT_DOUBLE_EQ(jedecRefreshScale(110.0), 0.125);
}

TEST(RefreshCoupling, ColdStackKeepsNominalRefresh)
{
    StackSystem sys(smallConfig());
    const auto &app = workloads::profileByName("IS");
    const RefreshCoupledResult r =
        evaluateWithRefreshCoupling(sys, app, 2.4);
    EXPECT_DOUBLE_EQ(r.refreshScale, 1.0);
    EXPECT_EQ(r.iterations, 1);
}

TEST(RefreshCoupling, HotStackRefreshesMore)
{
    // Drive the DRAM above 85 C with the hottest app at a high clock.
    SystemConfig cfg = smallConfig(stack::Scheme::Base);
    cfg.stackSpec.numDramDies = 8;
    StackSystem sys(cfg);
    const auto &app = workloads::profileByName("LU(NAS)");
    const RefreshCoupledResult r =
        evaluateWithRefreshCoupling(sys, app, 3.5);
    if (r.eval.dramBottomHotspot > 85.0) {
        EXPECT_LT(r.refreshScale, 1.0);
        EXPECT_GE(r.iterations, 2);
    } else {
        GTEST_SKIP() << "stack did not exceed 85 C in this config";
    }
}

// ---------------------------------------------------------------------
// Electrothermal leakage loop
// ---------------------------------------------------------------------

TEST(ElectroThermal, FeedbackRaisesTemperaturesAboveNominal)
{
    SystemConfig cfg = smallConfig(stack::Scheme::Base);
    const auto &app = workloads::profileByName("LU(NAS)");

    StackSystem plain(cfg);
    const double t_plain = plain.evaluate(app, 3.2).procHotspot;

    cfg.leakage.tempCoefficient = 0.015; // per Kelvin
    cfg.leakage.tNominal = 60.0; // well below the operating point
    cfg.electroThermalIterations = 4;
    StackSystem coupled(cfg);
    const double t_coupled = coupled.evaluate(app, 3.2).procHotspot;

    // Die hotter than tNominal: leakage grows with temperature, so
    // the coupled solution must be hotter.
    EXPECT_GT(t_coupled, t_plain + 0.2);
    EXPECT_LT(t_coupled, t_plain + 20.0); // ...but far from runaway
}

TEST(ElectroThermal, FeedbackLowersTemperaturesBelowNominal)
{
    SystemConfig cfg = smallConfig(stack::Scheme::Base);
    const auto &app = workloads::profileByName("IS"); // cool workload

    StackSystem plain(cfg);
    const double t_plain = plain.evaluate(app, 2.4).procHotspot;

    cfg.leakage.tempCoefficient = 0.015;
    cfg.leakage.tNominal = 110.0; // well above the operating point
    cfg.electroThermalIterations = 4;
    StackSystem coupled(cfg);
    const double t_coupled = coupled.evaluate(app, 2.4).procHotspot;

    // The calibrated leakage was quoted at a hotter point than this
    // die reaches: the feedback reduces leakage, hence temperature.
    EXPECT_LT(t_coupled, t_plain - 0.1);
}

TEST(ElectroThermal, ZeroCoefficientIsAFixedPoint)
{
    SystemConfig cfg = smallConfig();
    const auto &app = workloads::profileByName("FFT");
    StackSystem plain(cfg);
    const double t_plain = plain.evaluate(app, 2.4).procHotspot;

    cfg.electroThermalIterations = 3; // loop on, coefficient 0
    StackSystem looped(cfg);
    EXPECT_NEAR(looped.evaluate(app, 2.4).procHotspot, t_plain, 1e-6);
}

TEST(ElectroThermal, LeakageTempScaleClamps)
{
    power::LeakageParams leak;
    leak.tempCoefficient = 0.02;
    leak.tNominal = 90.0;
    const power::McPatLite model(power::EnergyParams{}, leak,
                                 power::DvfsTable::standard());
    EXPECT_NEAR(model.leakageTempScale(90.0), 1.0, 1e-12);
    EXPECT_NEAR(model.leakageTempScale(100.0), 1.2, 1e-12);
    EXPECT_NEAR(model.leakageTempScale(-100.0), 0.5, 1e-12); // clamp
}

// ---------------------------------------------------------------------
// Heatmap rendering
// ---------------------------------------------------------------------

TEST(Heatmap, RendersExpectedShape)
{
    thermal::TemperatureField f(1, 16, 8, 0, 50.0);
    f.at(0, 15, 7) = 90.0;
    std::ostringstream os;
    thermal::HeatmapOptions opts;
    opts.maxCols = 16;
    thermal::renderHeatmap(os, f, 0, opts);
    const std::string s = os.str();
    // 8 grid rows + scale line.
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 9);
    // The hottest char appears, and the scale mentions both extremes.
    EXPECT_NE(s.find(opts.ramp.back()), std::string::npos);
    EXPECT_NE(s.find("50.0"), std::string::npos);
    EXPECT_NE(s.find("90.0"), std::string::npos);
}

TEST(Heatmap, HottestCellGetsTheHottestChar)
{
    thermal::TemperatureField f(1, 4, 4, 0, 10.0);
    f.at(0, 2, 0) = 99.0;
    std::ostringstream os;
    thermal::HeatmapOptions opts;
    opts.showScale = false;
    thermal::renderHeatmap(os, f, 0, opts);
    // Row 0 is printed last (north up): the '@' is in the last line.
    const std::string s = os.str();
    const auto last_line = s.find_last_of('\n', s.size() - 2);
    EXPECT_NE(s.find('@', last_line), std::string::npos);
}

TEST(Heatmap, DownsamplesWideGrids)
{
    thermal::TemperatureField f(1, 128, 4, 0, 20.0);
    std::ostringstream os;
    thermal::HeatmapOptions opts;
    opts.maxCols = 32;
    opts.showScale = false;
    thermal::renderHeatmap(os, f, 0, opts);
    std::istringstream in(os.str());
    std::string line;
    ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
    EXPECT_LE(line.size(), 32u);
}

TEST(Heatmap, CsvRoundTrip)
{
    thermal::TemperatureField f(2, 3, 2, 0, 1.0);
    f.at(1, 2, 1) = 7.0;
    std::ostringstream os;
    thermal::writeCsv(os, f, 1);
    EXPECT_EQ(os.str(), "1,1,1\n1,1,7\n");
    EXPECT_THROW(thermal::writeCsv(os, f, 2), PanicError);
}

TEST(Heatmap, CsvHeaderAndCellCount)
{
    thermal::TemperatureField f(1, 4, 3, 0, 25.0);
    std::ostringstream os;
    thermal::writeCsv(os, f, 0, /*header=*/true);
    std::istringstream in(os.str());
    std::string line;
    ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
    EXPECT_EQ(line, "x0,x1,x2,x3");
    std::size_t rows = 0, cells = 0;
    while (std::getline(in, line)) {
        ++rows;
        cells += static_cast<std::size_t>(
                     std::count(line.begin(), line.end(), ',')) +
                 1;
    }
    EXPECT_EQ(rows, f.ny());
    EXPECT_EQ(cells, f.nx() * f.ny());
}

TEST(Heatmap, CsvIgnoresStreamLocaleAndFormatState)
{
    // A numpunct that prints ',' as the decimal separator — the worst
    // case for a comma-separated format. writeCsv must not consult it.
    struct CommaPunct : std::numpunct<char>
    {
        char do_decimal_point() const override { return ','; }
        std::string do_grouping() const override { return "\3"; }
        char do_thousands_sep() const override { return '.'; }
    };
    thermal::TemperatureField f(1, 2, 1, 0, 1.5);
    f.at(0, 1, 0) = 1234.25;
    std::ostringstream os;
    os.imbue(std::locale(os.getloc(), new CommaPunct));
    os << std::fixed << std::setprecision(1); // sticky state, ignored too
    thermal::writeCsv(os, f, 0);
    EXPECT_EQ(os.str(), "1.5,1234.25\n");
}

} // namespace
} // namespace xylem::core
