/**
 * @file
 * End-to-end acceptance test of the fault-tolerance layer: a small
 * but real sweep (full pipeline — simulation, power, thermal solve)
 * executed under deterministic injected faults must complete, recover
 * every recoverable task, quarantine the unrecoverable one into the
 * failure manifest, and report the recovery work in the telemetry
 * counters. Recovered-by-retry tasks must be byte-identical to the
 * fault-free run; tasks recovered through the dense escalation rung
 * (a different algorithm) must agree to solver tolerance.
 */

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/metrics.hpp"
#include "runtime/serialize.hpp"
#include "runtime/sweep_runner.hpp"
#include "verify/dense_solver.hpp"
#include "workloads/profile.hpp"
#include "xylem/system.hpp"

namespace xylem::core {
namespace {

namespace fs = std::filesystem;
using runtime::FaultInjector;
using runtime::Metrics;
using runtime::RunnerOptions;
using runtime::SweepManifest;
using runtime::SweepRunner;

/** A unique, self-deleting temp directory per test. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_((fs::temp_directory_path() /
                 ("xylem_test_" + tag + "_" +
                  std::to_string(::getpid())))
                    .string())
    {
        fs::remove_all(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Tiny grid so even the dense (O(n³)) rung is fast. */
SystemConfig
tinyConfig()
{
    SystemConfig cfg;
    cfg.stackSpec.numDramDies = 2;
    cfg.stackSpec.gridNx = 12;
    cfg.stackSpec.gridNy = 12;
    cfg.cpu.instsPerThread = 40000;
    cfg.cpu.warmupInsts = 200000;
    return cfg;
}

constexpr std::size_t kNumTasks = 12;
const char *const kApps[] = {"IS", "LU(NAS)", "FT", "CG"};
const double kFreqs[] = {2.4, 2.8, 3.2};

/**
 * One sweep task: evaluate the full pipeline for an (app, frequency)
 * grid point in a task-owned system, and return the raw temperature
 * field — the byte-identity witness.
 */
std::vector<double>
evalTask(std::size_t i)
{
    StackSystem sys(tinyConfig());
    const EvalResult r =
        sys.evaluate(workloads::profileByName(kApps[i % 4]),
                     kFreqs[i / 4]);
    return r.field.nodes();
}

std::string
taskKey(std::size_t i)
{
    return std::string("fault-test|") + kApps[i % 4] + "|" +
           std::to_string(kFreqs[i / 4]) + "|v1";
}

void
encodeField(runtime::BinaryWriter &w, const std::vector<double> &v)
{
    w.vecF64(v);
}

std::vector<double>
decodeField(runtime::BinaryReader &r)
{
    return r.vecF64();
}

// Forces CG non-convergence on tasks 2 and 5 (recovered through the
// escalation ladder, ultimately by the dense solver), fails every
// attempt of task 7 (quarantined), fails a fraction of first attempts
// outright (recovered by plain retry), and corrupts half of all cache
// records once records exist (recovered by recompute).
const char *const kFaultSpec =
    "seed=1,cache_corrupt=0.5,task_fail=0.4,cg_noconv=2;5,task_kill=7";

TEST(FaultTolerance, FaultySweepCompletesAndMatchesFaultFreeRun)
{
    // ---- fault-free baseline --------------------------------------
    std::vector<std::vector<double>> baseline(kNumTasks);
    {
        FaultInjector::ScopedSpec quiet("");
        RunnerOptions opts;
        opts.jobs = 2;
        opts.maxRetries = 1;
        SweepRunner runner(opts);
        const auto outcome = runner.runTolerant<std::vector<double>>(
            kNumTasks, taskKey, evalTask, encodeField, decodeField);
        ASSERT_TRUE(outcome.complete());
        for (std::size_t i = 0; i < kNumTasks; ++i)
            baseline[i] = *outcome.results[i];
    }
    // The dense last-resort rung must actually be reachable.
    ASSERT_LE(baseline[0].size(), verify::kDenseNodeLimit);

    // Which tasks the injector will fail on their first attempt
    // (deterministic, so the test can assert exact recovery counts).
    std::vector<bool> transient_fail(kNumTasks, false);
    std::size_t expected_retries = 0;
    {
        FaultInjector::ScopedSpec spec(kFaultSpec);
        for (std::size_t i = 0; i < kNumTasks; ++i) {
            if (i == 7)
                continue; // task_kill, not a plain retry
            transient_fail[i] =
                FaultInjector::global().injectTaskFailure(i, 0);
            expected_retries += transient_fail[i] ? 1 : 0;
        }
    }
    ASSERT_GT(expected_retries, 0u)
        << "fault spec must hit at least one task with task_fail";

    // ---- faulty run on an empty cache -----------------------------
    TempDir dir("faultsweep");
    RunnerOptions opts;
    opts.jobs = 2;
    opts.maxRetries = 1;
    opts.cacheDir = dir.path();
    FaultInjector::ScopedSpec spec(kFaultSpec);
    Metrics::global().reset();
    runtime::SweepOutcome<std::vector<double>> outcome;
    {
        SweepRunner runner(opts);
        outcome = runner.runTolerant<std::vector<double>>(
            kNumTasks, taskKey, evalTask, encodeField, decodeField);
    }

    // The grid completed with exactly the unrecoverable task
    // quarantined.
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].index, 7u);
    EXPECT_EQ(outcome.failures[0].code, "injected-fault");
    EXPECT_EQ(outcome.failures[0].attempts, 2); // initial + one retry
    EXPECT_FALSE(outcome.results[7].has_value());

    for (std::size_t i = 0; i < kNumTasks; ++i) {
        if (i == 7)
            continue;
        ASSERT_TRUE(outcome.results[i].has_value()) << "task " << i;
        const auto &got = *outcome.results[i];
        ASSERT_EQ(got.size(), baseline[i].size());
        if (i == 2 || i == 5) {
            // Recovered by the dense rung: a different algorithm, so
            // equal to solver accuracy, not bit-for-bit.
            for (std::size_t k = 0; k < got.size(); ++k)
                EXPECT_NEAR(got[k], baseline[i][k], 0.05)
                    << "task " << i << " node " << k;
        } else {
            // Retry-recovered (or untouched): bit-identical replay.
            EXPECT_EQ(got, baseline[i]) << "task " << i;
        }
    }

    const auto snap = Metrics::global().snapshot();
    // The quarantined task also burned its one retry before giving up.
    EXPECT_EQ(snap.count("runner.retries"), expected_retries + 1);
    // Tasks 2 and 5 each climbed cold -> alt-precond -> dense.
    EXPECT_EQ(snap.count("runner.escalations"), 6u);
    EXPECT_GE(snap.count("solver.dense_solves"), 2u);
    EXPECT_EQ(snap.count("runner.failed"), 1u);
    EXPECT_GE(snap.count("fault.task_failures"), 2u);

    // The failure manifest names the quarantined task.
    bool manifest_seen = false;
    for (const auto &entry : fs::directory_iterator(dir.path())) {
        if (entry.path().extension() != ".manifest")
            continue;
        const auto m = SweepManifest::load(entry.path().string());
        ASSERT_TRUE(m.has_value());
        EXPECT_EQ(m->numTasks, kNumTasks);
        EXPECT_FALSE(m->interrupted);
        ASSERT_EQ(m->failures.size(), 1u);
        EXPECT_EQ(m->failures[0].index, 7u);
        // Escalated recoveries (2, 5) completed but are only recorded
        // as completed, never cached; everything else is both.
        EXPECT_EQ(m->completed.size(), kNumTasks - 1);
        manifest_seen = true;
    }
    EXPECT_TRUE(manifest_seen);

    // ---- faulty re-run over the (now corruptible) cache ------------
    Metrics::global().reset();
    {
        SweepRunner runner(opts);
        const auto again = runner.runTolerant<std::vector<double>>(
            kNumTasks, taskKey, evalTask, encodeField, decodeField);
        ASSERT_EQ(again.failures.size(), 1u);
        EXPECT_EQ(again.failures[0].index, 7u);
        for (std::size_t i = 0; i < kNumTasks; ++i) {
            if (i == 7)
                continue;
            ASSERT_TRUE(again.results[i].has_value()) << "task " << i;
            if (i == 2 || i == 5) {
                for (std::size_t k = 0; k < again.results[i]->size();
                     ++k)
                    EXPECT_NEAR((*again.results[i])[k], baseline[i][k],
                                0.05);
            } else {
                // Served from cache or recomputed after injected
                // corruption — either way, bit-identical.
                EXPECT_EQ(*again.results[i], baseline[i])
                    << "task " << i;
            }
        }
    }
    const auto snap2 = Metrics::global().snapshot();
    // cache_corrupt=0.5 over nine cached records: some must be hit,
    // and every corrupted record must surface as a decode failure
    // followed by recompute.
    EXPECT_GT(snap2.count("fault.cache_corruptions"), 0u);
    EXPECT_EQ(snap2.count("runner.cache_corrupt_records"),
              snap2.count("fault.cache_corruptions"));
    EXPECT_GT(snap2.count("runner.cache_hits"), 0u);
}

} // namespace
} // namespace xylem::core
