/**
 * @file
 * Differential harness for the batched multi-RHS solver path
 * (DESIGN.md §15): every column of a batch solve must be bit-identical
 * to the solo solve of that right-hand side — same temperatures, same
 * iteration count, same convergence report — across preconditioners
 * (Jacobi, vertical-line, multigrid), cold/warm/mixed starts, batch
 * sizes 1/3/8/32, thin and odd grids, and thread counts. The
 * BatchEquivalence suite runs under the ThreadSanitizer CI job too.
 *
 * Alongside the bitwise suite: the blocked matvec against per-column
 * apply(), the seeded RandomScenario property suite with per-column
 * physics invariants (energy balance, maximum principle, achieved
 * residual), the edge/death cases (empty batch, oversized batch), and
 * the multigrid boundary shapes (1-layer stack; a 2×2 grid whose
 * coarsening bottoms out immediately in the dense solve).
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "stack/stack.hpp"
#include "thermal/grid_model.hpp"
#include "thermal/mg/multigrid.hpp"
#include "thermal/multivector.hpp"
#include "verify/dense_solver.hpp"
#include "verify/invariants.hpp"
#include "verify/oracles.hpp"
#include "verify/scenario.hpp"

namespace xylem::thermal {
namespace {

using verify::buildPowerMap;
using verify::buildSlabStack;
using verify::randomScenario;
using verify::RandomScenario;
using verify::SlabLayer;

/**
 * K distinct power maps on one stack: the scenario's deposits scaled
 * by a per-column factor, so every column is a different (but equally
 * realistic) right-hand side against the same resident model.
 */
std::vector<PowerMap>
scaledPowerMaps(const stack::BuiltStack &stk, const RandomScenario &sc,
                std::size_t count)
{
    std::vector<PowerMap> maps;
    maps.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
        RandomScenario variant = sc;
        const double scale = 0.25 + 0.37 * static_cast<double>(k);
        for (auto &d : variant.deposits)
            d.watts *= scale;
        maps.push_back(buildPowerMap(stk, variant));
    }
    return maps;
}

std::vector<const PowerMap *>
pointersOf(const std::vector<PowerMap> &maps)
{
    std::vector<const PowerMap *> ptrs;
    ptrs.reserve(maps.size());
    for (const auto &m : maps)
        ptrs.push_back(&m);
    return ptrs;
}

void
expectColumnsBitIdentical(const GridModel &model,
                          const std::vector<PowerMap> &maps,
                          const std::vector<TemperatureField> &batch,
                          const std::vector<SolveStats> &batch_stats,
                          const char *what)
{
    ASSERT_EQ(batch.size(), maps.size()) << what;
    ASSERT_EQ(batch_stats.size(), maps.size()) << what;
    for (std::size_t k = 0; k < maps.size(); ++k) {
        SolveStats solo_stats;
        const TemperatureField solo =
            model.solveSteady(maps[k], &solo_stats);
        EXPECT_EQ(solo_stats.iterations, batch_stats[k].iterations)
            << what << ": column " << k << " iteration count";
        EXPECT_EQ(solo_stats.converged, batch_stats[k].converged)
            << what << ": column " << k;
        EXPECT_EQ(solo_stats.relativeResidual,
                  batch_stats[k].relativeResidual)
            << what << ": column " << k;
        ASSERT_EQ(solo.numNodes(), batch[k].numNodes());
        for (std::size_t i = 0; i < solo.numNodes(); ++i)
            ASSERT_EQ(solo.nodes()[i], batch[k].nodes()[i])
                << what << ": column " << k << ", node " << i;
    }
}

/**
 * The headline differential: cold batches of 1, 3 and 8 columns
 * against solo solves, for all three preconditioners, over seeded
 * random stacks. Equality is exact (bitwise), not a tolerance.
 */
TEST(BatchEquivalence, ColdBatchBitIdenticalToSoloAcrossPreconditioners)
{
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
        const RandomScenario sc = randomScenario(seed + 60);
        const auto stk = stack::buildStack(sc.spec);
        for (const Preconditioner pre :
             {Preconditioner::Jacobi, Preconditioner::VerticalLine,
              Preconditioner::Multigrid}) {
            SolverOptions opts = sc.solver;
            opts.preconditioner = pre;
            const GridModel model(stk, opts);
            for (const std::size_t K : {std::size_t{1}, std::size_t{3},
                                        std::size_t{8}}) {
                const auto maps = scaledPowerMaps(stk, sc, K);
                std::vector<SolveStats> stats;
                const auto batch =
                    model.solveSteadyBatch(pointersOf(maps), &stats);
                expectColumnsBitIdentical(model, maps, batch, stats,
                                          "cold batch");
            }
        }
    }
}

TEST(BatchEquivalence, LargeBatchOfThirtyTwoColumns)
{
    const RandomScenario sc = randomScenario(70);
    const auto stk = stack::buildStack(sc.spec);
    SolverOptions opts = sc.solver;
    opts.preconditioner = Preconditioner::VerticalLine;
    const GridModel model(stk, opts);
    const auto maps = scaledPowerMaps(stk, sc, 32);
    std::vector<SolveStats> stats;
    const auto batch = model.solveSteadyBatch(pointersOf(maps), &stats);
    expectColumnsBitIdentical(model, maps, batch, stats, "batch of 32");
}

/**
 * Mixed cold and warm columns in one batch: null warm-start entries
 * are cold columns; warm columns start from a perturbed converged
 * field (so CG has real work left). Both kinds must match their solo
 * counterpart bitwise — including the cold columns, which exercise
 * the b − A·0 = b residual path inside a matvec-initialised batch.
 */
TEST(BatchEquivalence, MixedColdAndWarmColumnsMatchSolo)
{
    for (const Preconditioner pre :
         {Preconditioner::VerticalLine, Preconditioner::Multigrid}) {
        const RandomScenario sc = randomScenario(71);
        const auto stk = stack::buildStack(sc.spec);
        SolverOptions opts = sc.solver;
        opts.preconditioner = pre;
        const GridModel model(stk, opts);
        constexpr std::size_t K = 6;
        const auto maps = scaledPowerMaps(stk, sc, K);

        std::vector<TemperatureField> starts;
        starts.reserve(K);
        for (std::size_t k = 0; k < K; ++k) {
            TemperatureField f = model.solveSteady(maps[k]);
            for (auto &v : f.nodes())
                v += 0.5;
            starts.push_back(std::move(f));
        }
        std::vector<const TemperatureField *> warm(K, nullptr);
        for (std::size_t k = 0; k < K; k += 2) // every other column warm
            warm[k] = &starts[k];

        std::vector<SolveStats> stats;
        const auto batch =
            model.solveSteadyBatch(pointersOf(maps), &stats, &warm);
        ASSERT_EQ(batch.size(), K);
        for (std::size_t k = 0; k < K; ++k) {
            SolveStats solo_stats;
            const TemperatureField solo =
                model.solveSteady(maps[k], &solo_stats, warm[k]);
            EXPECT_EQ(solo_stats.iterations, stats[k].iterations)
                << "column " << k << (warm[k] ? " warm" : " cold");
            for (std::size_t i = 0; i < solo.numNodes(); ++i)
                ASSERT_EQ(solo.nodes()[i], batch[k].nodes()[i])
                    << "column " << k << (warm[k] ? " warm" : " cold")
                    << ", node " << i;
        }
    }
}

/** Deterministic lockstep: threading must not change a single bit. */
TEST(BatchEquivalence, ThreadedBatchBitIdenticalToSerialBatch)
{
    const RandomScenario sc = randomScenario(72);
    const auto stk = stack::buildStack(sc.spec);
    for (const Preconditioner pre :
         {Preconditioner::VerticalLine, Preconditioner::Multigrid}) {
        SolverOptions serial = sc.solver;
        serial.preconditioner = pre;
        serial.threads = 1;
        SolverOptions threaded = serial;
        threaded.threads = 3;
        const GridModel a(stk, serial);
        const GridModel b(stk, threaded);
        const auto maps = scaledPowerMaps(stk, sc, 5);
        std::vector<SolveStats> sa, sb;
        const auto ra = a.solveSteadyBatch(pointersOf(maps), &sa);
        const auto rb = b.solveSteadyBatch(pointersOf(maps), &sb);
        for (std::size_t k = 0; k < maps.size(); ++k) {
            EXPECT_EQ(sa[k].iterations, sb[k].iterations) << "col " << k;
            for (std::size_t i = 0; i < ra[k].numNodes(); ++i)
                ASSERT_EQ(ra[k].nodes()[i], rb[k].nodes()[i])
                    << "column " << k << ", node " << i;
        }
    }
}

/**
 * Thin and odd lateral shapes hit the matvec's nx==1 and edge-row
 * special cases and the semicoarsening ceil-division; all must stay
 * bitwise solo-equal. The 1-wide slab exercises the single-cell-row
 * kernel that has no west/east neighbours at all.
 */
TEST(BatchEquivalence, ThinAndOddGridsMatchSolo)
{
    struct Shape
    {
        std::size_t nx, ny;
        int dies;
    };
    for (const Shape &s :
         {Shape{9, 7, 2}, Shape{11, 5, 1}, Shape{6, 12, 3}}) {
        RandomScenario sc = randomScenario(73);
        sc.spec.gridNx = s.nx;
        sc.spec.gridNy = s.ny;
        sc.spec.numDramDies = s.dies;
        for (auto &d : sc.deposits)
            d.dramDie = std::min(d.dramDie, s.dies - 1);
        sc.solver.preconditioner = Preconditioner::Multigrid;
        const auto stk = stack::buildStack(sc.spec);
        const GridModel model(stk, sc.solver);
        const auto maps = scaledPowerMaps(stk, sc, 4);
        std::vector<SolveStats> stats;
        const auto batch =
            model.solveSteadyBatch(pointersOf(maps), &stats);
        expectColumnsBitIdentical(model, maps, batch, stats,
                                  "odd shape");
    }

    // nx == 1: a slab column one cell wide.
    const std::vector<SlabLayer> slab = {
        {5e-4, 120.0}, {2e-5, 2.0}, {5e-4, 120.0}, {1e-3, 380.0}};
    const auto stk = buildSlabStack(slab, 1, 6);
    SolverOptions opts;
    opts.tolerance = 1e-9;
    opts.preconditioner = Preconditioner::VerticalLine;
    const GridModel model(stk, opts);
    std::vector<PowerMap> maps;
    for (std::size_t k = 0; k < 3; ++k) {
        PowerMap p(stk);
        p.deposit(0, stk.grid.extent(), 2.0 + static_cast<double>(k));
        maps.push_back(std::move(p));
    }
    std::vector<SolveStats> stats;
    const auto batch = model.solveSteadyBatch(pointersOf(maps), &stats);
    expectColumnsBitIdentical(model, maps, batch, stats, "1-wide slab");
}

/**
 * A zero-power column inside a live batch must converge instantly to
 * ambient (solo does: ‖b‖ = 0 short-circuits) without perturbing its
 * neighbours, whose lockstep recurrences divide by quantities the
 * frozen column no longer contributes to.
 */
TEST(BatchEquivalence, ZeroPowerColumnMatchesSoloInsideLiveBatch)
{
    const RandomScenario sc = randomScenario(74);
    const auto stk = stack::buildStack(sc.spec);
    const GridModel model(stk, sc.solver);
    std::vector<PowerMap> maps = scaledPowerMaps(stk, sc, 3);
    maps.insert(maps.begin() + 1, PowerMap(stk)); // all-zero column
    std::vector<SolveStats> stats;
    const auto batch = model.solveSteadyBatch(pointersOf(maps), &stats);
    expectColumnsBitIdentical(model, maps, batch, stats,
                              "zero-power column");
    EXPECT_EQ(stats[1].iterations, 0u);
    EXPECT_TRUE(stats[1].converged);
}

TEST(BatchEquivalence, EmptyBatchReturnsEmpty)
{
    const RandomScenario sc = randomScenario(75);
    const auto stk = stack::buildStack(sc.spec);
    const GridModel model(stk, sc.solver);
    std::vector<SolveStats> stats(7); // stale entries must be cleared
    const auto out = model.solveSteadyBatch({}, &stats);
    EXPECT_TRUE(out.empty());
    EXPECT_TRUE(stats.empty());
}

TEST(BatchEquivalence, OversizedBatchRaisesTypedConfigError)
{
    const RandomScenario sc = randomScenario(75);
    const auto stk = stack::buildStack(sc.spec);
    const GridModel model(stk, sc.solver);
    const PowerMap zero(stk);
    const std::vector<const PowerMap *> too_many(kMaxBatchRhs + 1,
                                                 &zero);
    try {
        model.solveSteadyBatch(too_many);
        FAIL() << "expected ErrorCode::Config";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::Config);
    }
}

/**
 * SolverKind::Multigrid (standalone V-cycle iteration) has no blocked
 * path; the batch entry point must fall back to serial solo solves —
 * trivially bitwise-equal, and proving the fallback wiring.
 */
TEST(BatchEquivalence, StandaloneMgKindFallsBackToSerialSolves)
{
    RandomScenario sc = randomScenario(76);
    sc.solver.kind = SolverKind::Multigrid;
    sc.solver.preconditioner = Preconditioner::Multigrid;
    const auto stk = stack::buildStack(sc.spec);
    const GridModel model(stk, sc.solver);
    const auto maps = scaledPowerMaps(stk, sc, 3);
    std::vector<SolveStats> stats;
    const auto batch = model.solveSteadyBatch(pointersOf(maps), &stats);
    expectColumnsBitIdentical(model, maps, batch, stats,
                              "standalone MG fallback");
}

/**
 * The blocked matvec against per-column apply(), bitwise, with and
 * without the transient extra diagonal — the kernel-level half of the
 * differential harness (solveSteadyBatch covers the driver half).
 */
TEST(BatchEquivalence, BlockedApplyMatchesPerColumnApply)
{
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        const RandomScenario sc = randomScenario(seed + 77);
        const auto stk = stack::buildStack(sc.spec);
        const GridModel model(stk, sc.solver);
        const std::size_t n = model.numNodes();
        constexpr std::size_t K = 5;

        std::vector<double> extra(n);
        Rng rng(seed * 13 + 1);
        for (auto &e : extra)
            e = rng.uniform(0.0, 50.0);

        MultiVector x, y;
        x.resize(n, K);
        std::vector<std::vector<double>> cols(K);
        for (std::size_t k = 0; k < K; ++k) {
            cols[k].resize(n);
            for (auto &v : cols[k])
                v = rng.uniform(-1.0, 1.0);
            x.setColumn(k, cols[k].data());
        }
        const std::vector<double> *variants[] = {nullptr, &extra};
        for (const std::vector<double> *ed : variants) {
            model.applyBlocked(x, y, ed);
            for (std::size_t k = 0; k < K; ++k) {
                std::vector<double> solo;
                model.apply(cols[k], solo, ed);
                for (std::size_t i = 0; i < n; ++i)
                    ASSERT_EQ(solo[i], y.at(i, k))
                        << "seed " << seed << ", column " << k
                        << ", node " << i
                        << (ed ? " with" : " without") << " extra";
            }
        }
    }
}

/**
 * Property suite (satellite): seeded RandomScenario batches where
 * every column's solution must independently satisfy the physics
 * invariants — energy balance, maximum principle, achieved residual —
 * via the same verify::checkSolution the solo suites use, plus the
 * solo-equal convergence report.
 */
TEST(BatchPropertyTest, EveryColumnOfRandomBatchesSatisfiesInvariants)
{
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        const RandomScenario sc = randomScenario(seed + 90);
        const auto stk = stack::buildStack(sc.spec);
        const GridModel model(stk, sc.solver);
        const std::size_t K = 2 + seed % 5; // batch sizes 2..6
        const auto maps = scaledPowerMaps(stk, sc, K);
        std::vector<SolveStats> stats;
        const auto batch =
            model.solveSteadyBatch(pointersOf(maps), &stats);
        ASSERT_EQ(batch.size(), K);
        for (std::size_t k = 0; k < K; ++k) {
            EXPECT_TRUE(stats[k].converged) << "seed " << seed
                                            << " column " << k;
            EXPECT_LE(stats[k].relativeResidual, sc.solver.tolerance)
                << "seed " << seed << " column " << k;
            const verify::InvariantReport rep =
                verify::checkSolution(model, maps[k], batch[k]);
            EXPECT_TRUE(rep.pass)
                << "seed " << seed << " column " << k << ": "
                << rep.summary();
        }
    }
}

// ---------------------------------------------------------------------
// Multigrid boundary shapes (satellite): the hierarchy must stay
// correct when there is nothing to coarsen vertically (1 layer) or
// laterally (a 2×2 grid is already at the coarsest-cell threshold).
// ---------------------------------------------------------------------

TEST(MultigridEdgeShapes, SingleLayerStackVCycle)
{
    // One layer: the vertical-line smoother degenerates to a diagonal
    // solve and every level has layer count 1.
    const std::vector<SlabLayer> slab = {{1e-3, 150.0}};
    const auto stk = buildSlabStack(slab, 12, 10);
    SolverOptions opts;
    opts.tolerance = 1e-10;
    opts.preconditioner = Preconditioner::Multigrid;
    const GridModel model(stk, opts);
    ASSERT_NE(model.multigrid(), nullptr);
    EXPECT_GE(model.multigrid()->numLevels(), 2u);

    PowerMap power(stk);
    power.deposit(0, stk.grid.extent(), 6.0);
    SolveStats stats;
    const TemperatureField got = model.solveSteady(power, &stats);
    EXPECT_TRUE(stats.converged);
    const TemperatureField ref =
        verify::referenceSolveSteady(model, power);
    for (std::size_t i = 0; i < got.numNodes(); ++i)
        EXPECT_NEAR(got.nodes()[i], ref.nodes()[i], 1e-6) << i;

    // And the batched path over the same degenerate hierarchy.
    std::vector<PowerMap> maps;
    for (std::size_t k = 0; k < 3; ++k) {
        PowerMap p(stk);
        p.deposit(0, stk.grid.extent(), 1.0 + 2.0 * static_cast<double>(k));
        maps.push_back(std::move(p));
    }
    std::vector<SolveStats> bstats;
    const auto batch = model.solveSteadyBatch(pointersOf(maps), &bstats);
    expectColumnsBitIdentical(model, maps, batch, bstats,
                              "1-layer MG batch");
}

TEST(MultigridEdgeShapes, TwoByTwoGridBottomsOutImmediately)
{
    // 2×2 lateral cells ≤ coarsestCells: no coarse levels get built
    // and the V-cycle is a dense solve of the fine operator itself
    // (CG then converges in one iteration).
    const std::vector<SlabLayer> slab = {
        {5e-4, 120.0}, {2e-5, 2.0}, {1e-3, 380.0}};
    const auto stk = buildSlabStack(slab, 2, 2);
    SolverOptions opts;
    opts.tolerance = 1e-10;
    opts.preconditioner = Preconditioner::Multigrid;
    const GridModel model(stk, opts);
    ASSERT_NE(model.multigrid(), nullptr);
    EXPECT_EQ(model.multigrid()->numLevels(), 1u);

    PowerMap power(stk);
    power.deposit(0, stk.grid.extent(), 4.0);
    SolveStats stats;
    const TemperatureField got = model.solveSteady(power, &stats);
    EXPECT_TRUE(stats.converged);
    EXPECT_LE(stats.iterations, 2u); // B = A⁻¹ exactly
    const TemperatureField ref =
        verify::referenceSolveSteady(model, power);
    for (std::size_t i = 0; i < got.numNodes(); ++i)
        EXPECT_NEAR(got.nodes()[i], ref.nodes()[i], 1e-6) << i;

    std::vector<PowerMap> maps;
    for (std::size_t k = 0; k < 4; ++k) {
        PowerMap p(stk);
        p.deposit(0, stk.grid.extent(), 0.5 + static_cast<double>(k));
        maps.push_back(std::move(p));
    }
    std::vector<SolveStats> bstats;
    const auto batch = model.solveSteadyBatch(pointersOf(maps), &bstats);
    expectColumnsBitIdentical(model, maps, batch, bstats,
                              "2x2 dense-bottom batch");
}

} // namespace
} // namespace xylem::thermal
