/**
 * @file
 * The bench flag parser's failure modes: unknown values for
 * restricted-choice options (--precond, --solver, --setups) must fail
 * fast with the list of valid choices — exit code 2, like every other
 * argument error — never silently fall back to the default.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util.hpp"

namespace {

using xylem::bench::Args;

/** argv builder: owns the strings, hands out mutable char*. */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args) : strings_(std::move(args))
    {
        for (auto &s : strings_)
            ptrs_.push_back(s.data());
    }
    int argc() const { return static_cast<int>(ptrs_.size()); }
    char **argv() { return ptrs_.data(); }

  private:
    std::vector<std::string> strings_;
    std::vector<char *> ptrs_;
};

TEST(BenchArgs, ChoiceOptionAcceptsValidValue)
{
    Argv av({"perf_solver", "--precond", "mg"});
    Args args(av.argc(), av.argv(), "");
    EXPECT_EQ(args.choiceOption("--precond", {"jacobi", "line", "mg"},
                                "line"),
              "mg");
    args.finish();
}

TEST(BenchArgs, ChoiceOptionFallsBackWhenAbsent)
{
    Argv av({"perf_solver"});
    Args args(av.argc(), av.argv(), "");
    EXPECT_EQ(args.choiceOption("--precond", {"jacobi", "line", "mg"},
                                "line"),
              "line");
}

TEST(BenchArgsDeathTest, ChoiceOptionRejectsUnknownValue)
{
    Argv av({"perf_solver", "--precond", "ilu"});
    Args args(av.argc(), av.argv(), "");
    EXPECT_EXIT(args.choiceOption("--precond", {"jacobi", "line", "mg"},
                                  "line"),
                ::testing::ExitedWithCode(2),
                "invalid value 'ilu' for --precond "
                "\\(valid choices: jacobi, line, mg\\)");
}

TEST(BenchArgs, ChoiceListParsesCommaSeparatedValues)
{
    Argv av({"perf_solver", "--solver", "cg,mg"});
    Args args(av.argc(), av.argv(), "");
    const auto v =
        args.choiceListOption("--solver", {"cg", "mg"}, {"cg"});
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], "cg");
    EXPECT_EQ(v[1], "mg");
    args.finish();
}

TEST(BenchArgs, ChoiceListFallsBackWhenAbsent)
{
    Argv av({"perf_solver"});
    Args args(av.argc(), av.argv(), "");
    const auto v =
        args.choiceListOption("--solver", {"cg", "mg"}, {"cg"});
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], "cg");
}

TEST(BenchArgsDeathTest, ChoiceListRejectsUnknownElement)
{
    Argv av({"perf_solver", "--solver", "cg,pcg"});
    Args args(av.argc(), av.argv(), "");
    EXPECT_EXIT(args.choiceListOption("--solver", {"cg", "mg"}, {}),
                ::testing::ExitedWithCode(2),
                "invalid value 'pcg' for --solver "
                "\\(valid choices: cg, mg\\)");
}

TEST(BenchArgsDeathTest, ChoiceListRejectsEmptyList)
{
    Argv av({"perf_solver", "--solver", ","});
    Args args(av.argc(), av.argv(), "");
    EXPECT_EXIT(args.choiceListOption("--solver", {"cg", "mg"}, {}),
                ::testing::ExitedWithCode(2),
                "empty value for --solver");
}

TEST(BenchArgs, BoundedIntAcceptsInRangeValue)
{
    Argv av({"perf_solver", "--rhs", "32"});
    Args args(av.argc(), av.argv(), "");
    EXPECT_EQ(args.boundedIntOption("--rhs", 8, 1, 64), 32);
    args.finish();
}

TEST(BenchArgsDeathTest, RhsZeroIsRejected)
{
    // `--rhs 0` would mean a zero-column block solve; the flag parser
    // must fail fast instead of handing the solver an empty batch.
    Argv av({"perf_solver", "--rhs", "0"});
    Args args(av.argc(), av.argv(), "");
    EXPECT_EXIT(args.boundedIntOption("--rhs", 8, 1, 64),
                ::testing::ExitedWithCode(2),
                "invalid value for --rhs \\(must be in \\[1, 64\\]\\)");
}

TEST(BenchArgsDeathTest, RhsBeyondBatchLimitIsRejected)
{
    Argv av({"perf_solver", "--rhs", "65"});
    Args args(av.argc(), av.argv(), "");
    EXPECT_EXIT(args.boundedIntOption("--rhs", 8, 1, 64),
                ::testing::ExitedWithCode(2),
                "invalid value for --rhs \\(must be in \\[1, 64\\]\\)");
}

TEST(BenchArgsDeathTest, UnknownLeftoverArgumentStillDies)
{
    Argv av({"perf_solver", "--no-such-flag"});
    Args args(av.argc(), av.argv(), "");
    EXPECT_EXIT(args.finish(), ::testing::ExitedWithCode(2),
                "unknown argument");
}

} // namespace
