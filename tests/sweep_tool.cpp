/**
 * @file
 * Small deterministic sweep driver used by resume_test to exercise the
 * crash/resume path across real process boundaries: a run can be made
 * to SIGTERM itself mid-grid (--kill-after), after which a --resume
 * run against the same cache directory must produce a byte-identical
 * output file.
 *
 * Exit status: 0 on success, 130 when the sweep was drained by a
 * signal (the shell convention for SIGINT-terminated jobs), 1 on any
 * permanent task failure.
 */

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "runtime/serialize.hpp"
#include "runtime/sweep_runner.hpp"

namespace {

using namespace xylem;
using runtime::BinaryReader;
using runtime::BinaryWriter;
using runtime::RunnerOptions;
using runtime::SweepRunner;

/** Deterministic, mildly expensive stand-in for a real experiment. */
double
computeTask(std::size_t i)
{
    double x = static_cast<double>(i) + 1.0;
    for (int k = 0; k < 200000; ++k)
        x = x * 1.0000001 + std::sin(static_cast<double>(k) * 1e-3) * 1e-6;
    return x;
}

} // namespace

int
main(int argc, char **argv)
{
    RunnerOptions opts;
    opts.jobs = 1;
    std::size_t num_tasks = 24;
    long kill_after = -1;
    std::string out_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--cache-dir")
            opts.cacheDir = value();
        else if (arg == "--jobs")
            opts.jobs = std::stoi(value());
        else if (arg == "--tasks")
            num_tasks = std::stoull(value());
        else if (arg == "--kill-after")
            kill_after = std::stol(value());
        else if (arg == "--resume")
            opts.resume = true;
        else if (arg == "--out")
            out_path = value();
        else {
            std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
            return 2;
        }
    }

    SweepRunner::installSignalHandlers();

    std::atomic<long> completions{0};
    auto compute = [&](std::size_t i) {
        const double x = computeTask(i);
        // Simulate an operator interrupt mid-grid: the process sends
        // itself a real SIGTERM, caught by the installed handler.
        if (kill_after >= 0 &&
            completions.fetch_add(1) + 1 == kill_after)
            std::raise(SIGTERM);
        return x;
    };
    auto key = [](std::size_t i) {
        return "sweep-tool|" + std::to_string(i) + "|v1";
    };

    SweepRunner runner(opts);
    std::vector<double> results;
    try {
        results = runner.run<double>(
            num_tasks, key, compute,
            [](BinaryWriter &w, const double &v) { w.f64(v); },
            [](BinaryReader &r) { return r.f64(); });
    } catch (const Error &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return e.code() == ErrorCode::Interrupted ? 130 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }

    if (!out_path.empty()) {
        std::FILE *out = std::fopen(out_path.c_str(), "w");
        if (!out) {
            std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
            return 1;
        }
        // %a: exact hexadecimal doubles — the byte-identity witness.
        for (std::size_t i = 0; i < results.size(); ++i)
            std::fprintf(out, "%zu %a\n", i, results[i]);
        std::fclose(out);
    }
    return 0;
}
