/**
 * @file
 * Tests for the DVFS table and the McPAT-lite power model.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "power/mcpat_lite.hpp"

namespace xylem::power {
namespace {

// ---------------------------------------------------------------------
// DVFS table
// ---------------------------------------------------------------------

TEST(Dvfs, StandardTableMatchesSection62)
{
    const DvfsTable t = DvfsTable::standard();
    // 2.4 to 3.5 GHz in 100 MHz steps -> 12 points.
    EXPECT_EQ(t.points().size(), 12u);
    EXPECT_DOUBLE_EQ(t.minFrequency(), 2.4);
    EXPECT_DOUBLE_EQ(t.maxFrequency(), 3.5);
    EXPECT_DOUBLE_EQ(t.stepGHz(), 0.1);
}

TEST(Dvfs, VoltageIsMonotonic)
{
    const DvfsTable t = DvfsTable::standard();
    double prev = 0.0;
    for (const auto &pt : t.points()) {
        EXPECT_GE(pt.voltage, prev);
        prev = pt.voltage;
    }
    EXPECT_DOUBLE_EQ(t.points().front().voltage, 0.90);
    EXPECT_DOUBLE_EQ(t.points().back().voltage, 0.95);
}

TEST(Dvfs, VoltageInterpolatesAndClamps)
{
    const DvfsTable t = DvfsTable::standard();
    EXPECT_DOUBLE_EQ(t.voltageAt(2.4), 0.90);
    EXPECT_DOUBLE_EQ(t.voltageAt(3.5), 0.95);
    EXPECT_DOUBLE_EQ(t.voltageAt(1.0), 0.90);  // clamped below
    EXPECT_DOUBLE_EQ(t.voltageAt(9.0), 0.95);  // clamped above
    const double mid = t.voltageAt(2.95);
    EXPECT_GT(mid, 0.90);
    EXPECT_LT(mid, 0.95);
}

TEST(Dvfs, ValidFrequencies)
{
    const DvfsTable t = DvfsTable::standard();
    EXPECT_TRUE(t.isValidFrequency(2.4));
    EXPECT_TRUE(t.isValidFrequency(3.0));
    EXPECT_FALSE(t.isValidFrequency(2.45));
    EXPECT_FALSE(t.isValidFrequency(3.6));
}

TEST(Dvfs, FloorFrequency)
{
    const DvfsTable t = DvfsTable::standard();
    EXPECT_DOUBLE_EQ(t.floorFrequency(2.79), 2.7);
    EXPECT_DOUBLE_EQ(t.floorFrequency(2.4), 2.4);
    EXPECT_DOUBLE_EQ(t.floorFrequency(1.0), 2.4);  // clamped
    EXPECT_DOUBLE_EQ(t.floorFrequency(99.0), 3.5);
}

TEST(Dvfs, FrequenciesVector)
{
    const auto fs = DvfsTable::standard().frequencies();
    ASSERT_EQ(fs.size(), 12u);
    EXPECT_DOUBLE_EQ(fs.front(), 2.4);
    EXPECT_DOUBLE_EQ(fs.back(), 3.5);
    for (std::size_t i = 1; i < fs.size(); ++i)
        EXPECT_NEAR(fs[i] - fs[i - 1], 0.1, 1e-12);
}

TEST(Dvfs, RejectsBadRanges)
{
    EXPECT_THROW(DvfsTable(0.0, 1.0, 0.1, 0.9, 1.0), PanicError);
    EXPECT_THROW(DvfsTable(2.0, 1.0, 0.1, 0.9, 1.0), PanicError);
    EXPECT_THROW(DvfsTable(1.0, 2.0, 0.1, 1.0, 0.9), PanicError);
}

// ---------------------------------------------------------------------
// McPAT-lite
// ---------------------------------------------------------------------

/** A hand-crafted simulation result for exact power arithmetic. */
cpu::SimResult
craftedResult(int cores = 8)
{
    cpu::SimResult r;
    r.seconds = 1.0; // rates == counts
    r.cores.resize(cores);
    r.mcRequests.assign(4, 0);
    for (auto &c : r.cores)
        c.hasThread = true;
    return r;
}

TEST(McPat, ZeroActivityLeavesLeakageAndClock)
{
    const McPatLite model = McPatLite::standard();
    cpu::SimResult r = craftedResult();
    const std::vector<double> freqs(8, 2.4);
    const ProcPower p = model.procPower(r, freqs);

    const auto &e = model.energyParams();
    const auto &l = model.leakageParams();
    // At the nominal voltage the scale factors are exactly 1.
    const double expected_clock = 2.4e9 * e.clockPerCycle;
    for (int c = 0; c < 8; ++c) {
        EXPECT_NEAR(p.coreDynamic[c].total(), expected_clock, 1e-9);
        EXPECT_DOUBLE_EQ(p.coreLeakage[c], l.perCore);
        EXPECT_DOUBLE_EQ(p.l2Leakage[c], l.perL2Slice);
        EXPECT_DOUBLE_EQ(p.l2Dynamic[c], 0.0);
    }
    EXPECT_DOUBLE_EQ(p.busDynamic, 0.0);
    EXPECT_DOUBLE_EQ(p.uncoreLeakage, l.uncore);
    for (double m : p.mcPower)
        EXPECT_DOUBLE_EQ(m, e.mcStaticEach);
}

TEST(McPat, IdleCoresAreClockGated)
{
    const McPatLite model = McPatLite::standard();
    cpu::SimResult r = craftedResult();
    r.cores[3].hasThread = false;
    const std::vector<double> freqs(8, 2.4);
    const ProcPower p = model.procPower(r, freqs);
    EXPECT_LT(p.coreDynamic[3].clock, p.coreDynamic[0].clock);
    EXPECT_NEAR(p.coreDynamic[3].clock,
                p.coreDynamic[0].clock *
                    model.energyParams().idleClockFraction,
                1e-9);
}

TEST(McPat, DynamicPowerMatchesHandArithmetic)
{
    const McPatLite model = McPatLite::standard();
    cpu::SimResult r = craftedResult();
    auto &c = r.cores[0];
    c.insts = 1000000000; // 1G events/s at seconds == 1
    c.fpuOps = 250000000;
    const std::vector<double> freqs(8, 2.4);
    const ProcPower p = model.procPower(r, freqs);
    const auto &e = model.energyParams();
    EXPECT_NEAR(p.coreDynamic[0].fetch, 1e9 * e.fetch, 1e-9);
    EXPECT_NEAR(p.coreDynamic[0].fpu, 0.25e9 * e.fpu, 1e-9);
    EXPECT_DOUBLE_EQ(p.coreDynamic[1].fpu, 0.0);
}

TEST(McPat, PowerScalesWithVoltageSquared)
{
    const McPatLite model = McPatLite::standard();
    cpu::SimResult r = craftedResult();
    r.cores[0].insts = 1000000000;
    const ProcPower low =
        model.procPower(r, std::vector<double>(8, 2.4));
    const ProcPower high =
        model.procPower(r, std::vector<double>(8, 3.5));
    const double v0 = model.dvfs().voltageAt(2.4);
    const double v1 = model.dvfs().voltageAt(3.5);
    // Same event rate, higher V: dynamic scales with (V1/V0)^2.
    EXPECT_NEAR(high.coreDynamic[0].fetch / low.coreDynamic[0].fetch,
                (v1 / v0) * (v1 / v0), 1e-9);
    // Leakage scales linearly with V.
    EXPECT_NEAR(high.coreLeakage[0] / low.coreLeakage[0], v1 / v0, 1e-9);
}

TEST(McPat, ClockPowerScalesWithFrequency)
{
    const McPatLite model = McPatLite::standard();
    cpu::SimResult r = craftedResult();
    const ProcPower low = model.procPower(r, std::vector<double>(8, 2.4));
    const ProcPower high = model.procPower(r, std::vector<double>(8, 3.0));
    EXPECT_GT(high.coreDynamic[0].clock,
              low.coreDynamic[0].clock * 3.0 / 2.4 - 1e-9);
}

TEST(McPat, StoresCountAgainstTheL2WriteThroughTraffic)
{
    const McPatLite model = McPatLite::standard();
    cpu::SimResult r = craftedResult();
    r.cores[0].stores = 100000000;
    const ProcPower p = model.procPower(r, std::vector<double>(8, 2.4));
    EXPECT_NEAR(p.l2Dynamic[0], 1e8 * model.energyParams().l2, 1e-9);
}

TEST(McPat, BusAndMcActivity)
{
    const McPatLite model = McPatLite::standard();
    cpu::SimResult r = craftedResult();
    r.busTransactions = 50000000;
    r.mcRequests = {10000000, 0, 0, 0};
    const ProcPower p = model.procPower(r, std::vector<double>(8, 2.4));
    const auto &e = model.energyParams();
    EXPECT_NEAR(p.busDynamic, 5e7 * e.bus, 1e-9);
    EXPECT_NEAR(p.mcPower[0], e.mcStaticEach + 1e7 * e.mc, 1e-9);
    EXPECT_NEAR(p.mcPower[1], e.mcStaticEach, 1e-12);
}

TEST(McPat, TotalsAddUp)
{
    const McPatLite model = McPatLite::standard();
    cpu::SimResult r = craftedResult();
    r.cores[0].insts = 1000000;
    r.busTransactions = 1000;
    const ProcPower p = model.procPower(r, std::vector<double>(8, 2.4));
    double manual = p.busDynamic + p.uncoreLeakage;
    for (std::size_t c = 0; c < 8; ++c)
        manual += p.coreTotal(c);
    for (double m : p.mcPower)
        manual += m;
    EXPECT_NEAR(p.total(), manual, 1e-12);
    EXPECT_GT(p.total(), 0.0);
}

TEST(McPat, RejectsBadInputs)
{
    const McPatLite model = McPatLite::standard();
    cpu::SimResult r = craftedResult();
    EXPECT_THROW(model.procPower(r, std::vector<double>(3, 2.4)),
                 PanicError);
    r.seconds = 0.0;
    EXPECT_THROW(model.procPower(r, std::vector<double>(8, 2.4)),
                 PanicError);
}

TEST(McPat, ProcessorDiePowerIsInThePaperBand)
{
    // §6.2: 8-24 W at 2.4 GHz across the suite. This is checked
    // end-to-end in system_test; here we sanity check one synthetic
    // heavy core mix: IPC 2.2 per core with a typical event mix.
    const McPatLite model = McPatLite::standard();
    cpu::SimResult r = craftedResult();
    for (auto &c : r.cores) {
        const double ips = 2.2 * 2.4e9;
        c.insts = static_cast<std::uint64_t>(ips);
        c.branches = static_cast<std::uint64_t>(0.08 * ips);
        c.aluOps = static_cast<std::uint64_t>(0.30 * ips);
        c.fpuOps = static_cast<std::uint64_t>(0.30 * ips);
        c.loads = static_cast<std::uint64_t>(0.22 * ips);
        c.stores = static_cast<std::uint64_t>(0.10 * ips);
        c.l1iAccesses = c.insts;
        c.l1dAccesses = c.loads + c.stores;
    }
    const ProcPower p = model.procPower(r, std::vector<double>(8, 2.4));
    EXPECT_GT(p.total(), 15.0);
    EXPECT_LT(p.total(), 26.0);
}

} // namespace
} // namespace xylem::power
