/**
 * @file
 * Crash/resume test across real process boundaries: run the
 * sweep_tool helper binary to completion, kill a second instance
 * mid-grid with a real SIGTERM (it signals itself), then resume the
 * interrupted run and require a byte-identical output file. This is
 * the subprocess-level proof behind the in-process
 * SweepRunner.InterruptDrainsAndResumeCompletesBitIdentically test.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

#include <gtest/gtest.h>

#include "runtime/checkpoint.hpp"

#ifndef XYLEM_SWEEP_TOOL
#error "XYLEM_SWEEP_TOOL must point at the sweep_tool binary"
#endif

namespace xylem::runtime {
namespace {

namespace fs = std::filesystem;

class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_((fs::temp_directory_path() /
                 ("xylem_test_" + tag + "_" +
                  std::to_string(::getpid())))
                    .string())
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Run a shell command; returns its exit status (or -1). */
int
runCommand(const std::string &command)
{
    const int rc = std::system(command.c_str());
    if (rc == -1)
        return -1;
    if (WIFEXITED(rc))
        return WEXITSTATUS(rc);
    return -1;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(Resume, KilledSubprocessResumesBitIdentically)
{
    TempDir dir("resume");
    const std::string tool = XYLEM_SWEEP_TOOL;
    const std::string full_cache = dir.path() + "/cache-full";
    const std::string kill_cache = dir.path() + "/cache-killed";
    const std::string out_full = dir.path() + "/full.txt";
    const std::string out_resumed = dir.path() + "/resumed.txt";

    // Reference: an uninterrupted run.
    ASSERT_EQ(runCommand(tool + " --jobs 2 --cache-dir " + full_cache +
                         " --out " + out_full + " >/dev/null 2>&1"),
              0);

    // A run that SIGTERMs itself after 5 completed tasks: it must
    // drain, checkpoint, and exit with the interrupt status.
    ASSERT_EQ(runCommand(tool + " --jobs 2 --cache-dir " + kill_cache +
                         " --kill-after 5 >/dev/null 2>&1"),
              130);

    // The drained run left a manifest marked interrupted, with some
    // but not all tasks completed.
    bool manifest_seen = false;
    for (const auto &entry : fs::directory_iterator(kill_cache)) {
        if (entry.path().extension() != ".manifest")
            continue;
        const auto m = SweepManifest::load(entry.path().string());
        ASSERT_TRUE(m.has_value());
        EXPECT_TRUE(m->interrupted);
        EXPECT_GT(m->completed.size(), 0u);
        EXPECT_LT(m->completed.size(), m->numTasks);
        manifest_seen = true;
    }
    ASSERT_TRUE(manifest_seen);

    // Resume completes the remainder and must reproduce the reference
    // output byte for byte.
    ASSERT_EQ(runCommand(tool + " --jobs 2 --cache-dir " + kill_cache +
                         " --resume --out " + out_resumed +
                         " >/dev/null 2>&1"),
              0);
    const std::string full = readFile(out_full);
    ASSERT_FALSE(full.empty());
    EXPECT_EQ(full, readFile(out_resumed));
}

} // namespace
} // namespace xylem::runtime
