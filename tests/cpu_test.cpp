/**
 * @file
 * Tests for the multicore performance model: the cache (LRU, MESI
 * state bookkeeping) and the simulator (IPC behaviour, coherence
 * traffic, frequency effects, determinism).
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "cpu/cache.hpp"
#include "cpu/multicore.hpp"
#include "workloads/profile.hpp"

namespace xylem::cpu {
namespace {

// ---------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------

TEST(Cache, GeometryValidation)
{
    EXPECT_NO_THROW(Cache(32u << 10, 2, 64));
    EXPECT_THROW(Cache(1000, 2, 64), PanicError);   // not a power of 2
    EXPECT_THROW(Cache(32u << 10, 0, 64), PanicError);
}

TEST(Cache, MissThenHit)
{
    Cache c(1024, 2, 64);
    EXPECT_EQ(c.access(0x100), Mesi::Invalid);
    c.fill(0x100, Mesi::Exclusive);
    EXPECT_EQ(c.access(0x100), Mesi::Exclusive);
    EXPECT_EQ(c.residentLines(), 1u);
}

TEST(Cache, SameLineDifferentOffsets)
{
    Cache c(1024, 2, 64);
    c.fill(0x100, Mesi::Shared);
    EXPECT_EQ(c.access(0x13F), Mesi::Shared); // same 64 B line
    EXPECT_EQ(c.access(0x140), Mesi::Invalid);
}

TEST(Cache, LruEviction)
{
    // 2-way, 64 B lines, 2 sets (256 B): lines 0x000, 0x080, 0x100...
    Cache c(256, 2, 64);
    c.fill(0x000, Mesi::Exclusive); // set 0
    c.fill(0x080, Mesi::Exclusive); // set 0 (line 2 -> set 0 of 2)
    c.access(0x000);                // make 0x080 the LRU line
    const Cache::Eviction ev = c.fill(0x100, Mesi::Exclusive); // set 0
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.addr, 0x080u);
    EXPECT_EQ(c.access(0x000), Mesi::Exclusive); // survived
    EXPECT_EQ(c.access(0x080), Mesi::Invalid);   // evicted
}

TEST(Cache, EvictionReportsDirtyState)
{
    Cache c(128, 1, 64); // direct-mapped, 2 sets
    c.fill(0x000, Mesi::Modified);
    const Cache::Eviction ev = c.fill(0x080, Mesi::Exclusive);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.state, Mesi::Modified);
    EXPECT_EQ(ev.addr, 0x000u);
}

TEST(Cache, FillOfResidentLineUpdatesState)
{
    Cache c(1024, 2, 64);
    c.fill(0x100, Mesi::Shared);
    const Cache::Eviction ev = c.fill(0x100, Mesi::Modified);
    EXPECT_FALSE(ev.valid);
    EXPECT_EQ(c.access(0x100), Mesi::Modified);
    EXPECT_EQ(c.residentLines(), 1u);
}

TEST(Cache, ProbeDoesNotTouchLru)
{
    Cache c(256, 2, 64);
    c.fill(0x000, Mesi::Exclusive);
    c.fill(0x080, Mesi::Exclusive);
    c.probe(0x000); // must NOT refresh 0x000
    const Cache::Eviction ev = c.fill(0x100, Mesi::Exclusive);
    EXPECT_EQ(ev.addr, 0x000u); // still LRU despite the probe
}

TEST(Cache, SetStateAndInvalidate)
{
    Cache c(1024, 2, 64);
    c.fill(0x100, Mesi::Exclusive);
    c.setState(0x100, Mesi::Shared);
    EXPECT_EQ(c.probe(0x100), Mesi::Shared);
    c.invalidate(0x100);
    EXPECT_EQ(c.probe(0x100), Mesi::Invalid);
    EXPECT_EQ(c.residentLines(), 0u);
    // No-ops on absent lines.
    EXPECT_NO_THROW(c.setState(0x9999, Mesi::Modified));
    EXPECT_NO_THROW(c.invalidate(0x9999));
}

TEST(Cache, FillRejectsInvalidState)
{
    Cache c(1024, 2, 64);
    EXPECT_THROW(c.fill(0x100, Mesi::Invalid), PanicError);
}

// ---------------------------------------------------------------------
// Multicore simulation
// ---------------------------------------------------------------------

MulticoreConfig
fastConfig()
{
    MulticoreConfig cfg;
    cfg.instsPerThread = 60000;
    // Short measured runs need a full warm-up or cold misses dominate.
    cfg.warmupInsts = 250000;
    return cfg;
}

TEST(Simulate, ComputeBoundRunsNearItsIssueCeiling)
{
    const auto &app = workloads::profileByName("LU(NAS)");
    const SimResult r = simulate(fastConfig(), allCoresRunning(app));
    const double ceiling = 4.0 * app.issueEfficiency;
    for (const auto &c : r.cores) {
        EXPECT_GT(c.ipc(), 0.5 * ceiling);
        EXPECT_LE(c.ipc(), ceiling + 1e-9);
    }
}

TEST(Simulate, MemoryBoundIsFarBelowItsCeiling)
{
    const auto &app = workloads::profileByName("IS");
    const SimResult r = simulate(fastConfig(), allCoresRunning(app));
    const double ceiling = 4.0 * app.issueEfficiency;
    EXPECT_LT(r.cores[0].ipc(), 0.4 * ceiling);
    EXPECT_GT(r.cores[0].dramAccesses, 500u);
}

TEST(Simulate, DeterministicForSameSeed)
{
    const auto &app = workloads::profileByName("FFT");
    const SimResult a = simulate(fastConfig(), allCoresRunning(app));
    const SimResult b = simulate(fastConfig(), allCoresRunning(app));
    EXPECT_EQ(a.totalInsts(), b.totalInsts());
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.busTransactions, b.busTransactions);
}

TEST(Simulate, SeedChangesTheDetails)
{
    const auto &app = workloads::profileByName("FFT");
    MulticoreConfig cfg = fastConfig();
    const SimResult a = simulate(cfg, allCoresRunning(app));
    cfg.seed = 999;
    const SimResult b = simulate(cfg, allCoresRunning(app));
    EXPECT_NE(a.busTransactions, b.busTransactions);
}

TEST(Simulate, InstructionBudgetIsExact)
{
    const auto &app = workloads::profileByName("Barnes");
    MulticoreConfig cfg = fastConfig();
    const SimResult r = simulate(cfg, allCoresRunning(app));
    for (const auto &c : r.cores)
        EXPECT_EQ(c.insts, cfg.instsPerThread);
}

TEST(Simulate, HigherFrequencyRunsFaster)
{
    const auto &app = workloads::profileByName("LU(NAS)");
    MulticoreConfig cfg = fastConfig();
    cfg.setUniformFrequency(2.4);
    const SimResult slow = simulate(cfg, allCoresRunning(app));
    cfg.setUniformFrequency(3.5);
    const SimResult fast = simulate(cfg, allCoresRunning(app));
    EXPECT_LT(fast.seconds, slow.seconds);
    // Compute-bound: most of the frequency increase turns into
    // speedup, but DRAM stalls cost more cycles at higher frequency,
    // so the ratio stays below the ideal 3.5/2.4 = 1.46.
    const double speedup = slow.seconds / fast.seconds;
    EXPECT_GT(speedup, 1.18);
    EXPECT_LT(speedup, 1.46);
}

TEST(Simulate, MemoryBoundGainsLittleFromFrequency)
{
    const auto &app = workloads::profileByName("IS");
    MulticoreConfig cfg = fastConfig();
    cfg.setUniformFrequency(2.4);
    const SimResult slow = simulate(cfg, allCoresRunning(app));
    cfg.setUniformFrequency(3.5);
    const SimResult fast = simulate(cfg, allCoresRunning(app));
    const double speedup = slow.seconds / fast.seconds;
    EXPECT_LT(speedup, 1.25);
    EXPECT_GE(speedup, 0.95);
}

TEST(Simulate, IdleCoresStayIdle)
{
    const auto &app = workloads::profileByName("FFT");
    const std::vector<ThreadSpec> threads = {{&app, 1}, {&app, 6}};
    const SimResult r = simulate(fastConfig(), threads);
    EXPECT_TRUE(r.cores[1].hasThread);
    EXPECT_TRUE(r.cores[6].hasThread);
    EXPECT_GT(r.cores[1].insts, 0u);
    for (int c : {0, 2, 3, 4, 5, 7}) {
        EXPECT_FALSE(r.cores[c].hasThread);
        EXPECT_EQ(r.cores[c].insts, 0u);
    }
}

TEST(Simulate, RejectsDoubleBookedCore)
{
    const auto &app = workloads::profileByName("FFT");
    const std::vector<ThreadSpec> threads = {{&app, 0}, {&app, 0}};
    EXPECT_THROW(simulate(fastConfig(), threads), PanicError);
}

TEST(Simulate, RejectsInvalidCoreOrEmptyThreads)
{
    const auto &app = workloads::profileByName("FFT");
    EXPECT_THROW(simulate(fastConfig(), {{&app, 12}}), PanicError);
    EXPECT_THROW(simulate(fastConfig(), {}), PanicError);
}

TEST(Simulate, SharingProducesCoherenceTraffic)
{
    // A profile with heavy sharing must produce upgrades or
    // cache-to-cache transfers.
    workloads::Profile p = workloads::profileByName("Radiosity");
    p.sharedFraction = 0.6;
    p.probHot = 0.80;
    p.probWarm = 0.15;
    p.probCold = 0.05;
    const SimResult r = simulate(fastConfig(), allCoresRunning(p));
    std::uint64_t coherence = 0;
    for (const auto &c : r.cores)
        coherence += c.upgrades + c.c2cTransfers;
    EXPECT_GT(coherence, 50u);
}

TEST(Simulate, NoSharingNoCoherenceTraffic)
{
    workloads::Profile p = workloads::profileByName("Black.");
    p.sharedFraction = 0.0;
    const SimResult r = simulate(fastConfig(), allCoresRunning(p));
    for (const auto &c : r.cores) {
        EXPECT_EQ(c.upgrades, 0u);
        EXPECT_EQ(c.c2cTransfers, 0u);
    }
}

TEST(Simulate, CountersAreConsistent)
{
    const auto &app = workloads::profileByName("FT");
    const SimResult r = simulate(fastConfig(), allCoresRunning(app));
    for (const auto &c : r.cores) {
        EXPECT_EQ(c.l1dAccesses, c.loads + c.stores);
        EXPECT_LE(c.l1dMisses, c.l1dAccesses);
        EXPECT_LE(c.l2Misses, c.l2Accesses);
        EXPECT_LE(c.mispredicts, c.branches);
        EXPECT_LE(c.dramAccesses, c.l2Misses);
        EXPECT_EQ(c.l1iAccesses, c.insts);
        EXPECT_GT(c.cycles, 0.0);
    }
    EXPECT_GT(r.busTransactions, 0u);
    EXPECT_EQ(r.mcRequests.size(), 4u);
}

TEST(Simulate, DramStatsArePopulated)
{
    const auto &app = workloads::profileByName("CG");
    const SimResult r = simulate(fastConfig(), allCoresRunning(app));
    EXPECT_EQ(r.dram.dies.size(), 8u);
    EXPECT_GT(r.dram.requests, 0u);
    EXPECT_GT(r.dramEnergyJ, 0.0);
    EXPECT_GT(r.dramAveragePowerW(), 0.0);
    std::uint64_t total = 0;
    for (const auto &die : r.dram.dies)
        total += die.totalAccesses();
    EXPECT_GT(total, 0u);
}

TEST(Simulate, WarmupReducesMeasuredColdMisses)
{
    const auto &app = workloads::profileByName("Cholesky");
    MulticoreConfig cold = fastConfig();
    cold.warmupInsts = 0;
    MulticoreConfig warm = fastConfig();
    warm.warmupInsts = 300000;
    const SimResult a = simulate(cold, allCoresRunning(app));
    const SimResult b = simulate(warm, allCoresRunning(app));
    EXPECT_GT(a.cores[0].l2Misses, b.cores[0].l2Misses);
}

TEST(Simulate, PerCoreFrequenciesAreHonoured)
{
    const auto &app = workloads::profileByName("LU(NAS)");
    MulticoreConfig cfg = fastConfig();
    cfg.coreFreqGHz = {2.4, 3.5, 2.4, 2.4, 2.4, 2.4, 2.4, 2.4};
    const std::vector<ThreadSpec> threads = {{&app, 0}, {&app, 1}};
    const SimResult r = simulate(cfg, threads);
    // Same instruction budget, higher frequency: core 1 finishes
    // sooner (compute-bound, little shared contention).
    EXPECT_LT(r.cores[1].busyNs, r.cores[0].busyNs);
}

TEST(Simulate, MismatchedFrequencyVectorThrows)
{
    const auto &app = workloads::profileByName("FFT");
    MulticoreConfig cfg = fastConfig();
    cfg.coreFreqGHz = {2.4, 2.4};
    EXPECT_THROW(simulate(cfg, allCoresRunning(app)), PanicError);
}

TEST(Simulate, AggregateHelpers)
{
    const auto &app = workloads::profileByName("FFT");
    MulticoreConfig cfg = fastConfig();
    const SimResult r = simulate(cfg, allCoresRunning(app));
    EXPECT_EQ(r.totalInsts(), 8 * cfg.instsPerThread);
    EXPECT_GT(r.ips(), 0.0);
}

} // namespace
} // namespace xylem::cpu
