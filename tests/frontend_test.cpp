/**
 * @file
 * Scale-out frontend tests.
 *
 * Three layers, cheapest first:
 *  - FrontendRingTest: the consistent-hash ring as pure logic —
 *    balance across 2..16 shards, minimal remap when a shard joins or
 *    leaves, and cross-process determinism (hard-coded owners: the
 *    assignment is part of the wire contract, so a silent hash change
 *    must fail a test, not just reshuffle caches).
 *  - FrontendEndpointTest: the endpoint grammar (unix:/tcp:/bare) and
 *    the sockaddr_un::sun_path boundary — a path one byte over the
 *    limit must be a typed Config error, because bind() would
 *    otherwise silently truncate it and listen somewhere else.
 *  - ScaleOutFrontendTest: an in-process Frontend routing to real
 *    forked xylem_serve shards (XYLEM_SERVE_BIN, like chaos_test):
 *    scenario affinity, typed-error and deadline pass-through,
 *    failover with the rerouted counter, typed Unavailable on total
 *    outage, and the mid-burst kill contract — admitted requests are
 *    answered or typed, never silently dropped.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "frontend/frontend.hpp"
#include "frontend/hash_ring.hpp"
#include "service/client.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/socket.hpp"

#ifndef XYLEM_SERVE_BIN
#error "frontend_test needs XYLEM_SERVE_BIN (the xylem_serve binary path)"
#endif

namespace {

using namespace xylem;
using service::JsonValue;

std::string
testPath(const char *tag, const char *suffix)
{
    return std::string("/tmp/xylem_frontend_") + tag + "_" +
           std::to_string(::getpid()) + suffix;
}

std::string
steadyFrame(std::uint64_t id, const std::string &app, double freq,
            int edge = 16, double deadline_ms = 0.0)
{
    std::ostringstream os;
    os << "{\"id\":" << id << ",\"query\":\"steady\",\"app\":\"" << app
       << "\",\"freqGHz\":" << freq;
    if (deadline_ms > 0.0)
        os << ",\"deadline_ms\":" << deadline_ms;
    os << ",\"config\":{\"gridNx\":" << edge << ",\"gridNy\":" << edge
       << "}}";
    return os.str();
}

// ---------------------------------------------------------------------
// Hash ring: pure logic.
// ---------------------------------------------------------------------

TEST(FrontendRingTest, Fnv1aMatchesTheReferenceVectors)
{
    // FNV-1a 64 test vectors: the ring's base hash may never change —
    // owners are a cross-process contract.
    EXPECT_EQ(frontend::fnv1a(""), 14695981039346656037ull);
    EXPECT_EQ(frontend::fnv1a("a"), 12638187200555641996ull);
    EXPECT_EQ(frontend::fnv1a("foobar"), 9625390261332436968ull);
}

TEST(FrontendRingTest, OwnershipIsBalancedFrom2To16Shards)
{
    // 64 replicas promise max/mean load under ~1.35 (hash_ring.hpp);
    // 4000 synthetic keys per count keep the test fast.
    for (std::size_t n = 2; n <= 16; ++n) {
        const frontend::HashRing ring(n, 64);
        std::vector<int> counts(n, 0);
        for (int k = 0; k < 4000; ++k)
            ++counts[ring.owner("scenario-key-" + std::to_string(k))];
        const int max = *std::max_element(counts.begin(), counts.end());
        const double ratio = max / (4000.0 / static_cast<double>(n));
        EXPECT_LT(ratio, 1.35) << "shard count " << n;
        for (std::size_t s = 0; s < n; ++s)
            EXPECT_GT(counts[s], 0)
                << "shard " << s << " of " << n << " owns nothing";
    }
}

TEST(FrontendRingTest, AddingAShardStealsKeysOnlyForTheNewShard)
{
    for (const std::size_t n : {2u, 4u, 8u}) {
        const frontend::HashRing before(n, 64);
        const frontend::HashRing after(n + 1, 64);
        int moved = 0;
        const int keys = 4000;
        for (int k = 0; k < keys; ++k) {
            const std::string key = "remap-key-" + std::to_string(k);
            const std::size_t was = before.owner(key);
            const std::size_t now = after.owner(key);
            if (was != now) {
                // Consistent hashing's defining property: a joining
                // shard takes keys, it never shuffles them between
                // the existing shards.
                EXPECT_EQ(now, n) << key;
                ++moved;
            }
        }
        // Expect ~keys/(n+1) moved; allow generous slack either way.
        EXPECT_GT(moved, keys / (4 * static_cast<int>(n + 1)));
        EXPECT_LT(moved, (3 * keys) / static_cast<int>(n + 1));
    }
}

TEST(FrontendRingTest, RemovingTheLastShardOnlyReassignsItsKeys)
{
    for (const std::size_t n : {3u, 5u, 9u}) {
        const frontend::HashRing before(n, 64);
        const frontend::HashRing after(n - 1, 64);
        for (int k = 0; k < 4000; ++k) {
            const std::string key = "remap-key-" + std::to_string(k);
            const std::size_t was = before.owner(key);
            if (was != n - 1) {
                EXPECT_EQ(after.owner(key), was) << key;
            }
        }
    }
}

TEST(FrontendRingTest, OwnersAreDeterministicAcrossProcesses)
{
    // Hard-coded assignments on a 4-shard ring with the default 64
    // replicas. If any of these move, the hash or the label scheme
    // changed: every deployed frontend would reshuffle its shards'
    // warm caches, and a mixed-version fleet would disagree on
    // owners. Bump these values only with that cost in mind.
    const frontend::HashRing ring(4, 64);
    const struct
    {
        const char *key;
        std::size_t owner;
    } cases[] = {
        {"steady|FFT|2.5|16x16", 3},
        {"steady|LU|3.0|16x16", 2},
        {"transient|Radix|2.0|32x32", 0},
        {"boost|Barnes|3.5|16x16", 0},
        {"steady|CG|2.2|24x24", 2},
    };
    for (const auto &c : cases)
        EXPECT_EQ(ring.owner(c.key), c.owner) << c.key;
}

TEST(FrontendRingTest, PreferenceListsEveryShardOnceOwnerFirst)
{
    const frontend::HashRing ring(6, 64);
    for (int k = 0; k < 200; ++k) {
        const std::string key = "pref-key-" + std::to_string(k);
        const std::vector<std::size_t> order = ring.preference(key);
        ASSERT_EQ(order.size(), 6u);
        EXPECT_EQ(order.front(), ring.owner(key));
        const std::set<std::size_t> unique(order.begin(), order.end());
        EXPECT_EQ(unique.size(), 6u);
    }
}

// ---------------------------------------------------------------------
// Endpoint grammar and the sun_path boundary.
// ---------------------------------------------------------------------

TEST(FrontendEndpointTest, ParsesUnixTcpAndBareForms)
{
    const service::Endpoint u = service::parseEndpoint("unix:/tmp/x.sock");
    EXPECT_EQ(u.kind, service::TransportKind::Unix);
    EXPECT_EQ(u.path, "/tmp/x.sock");
    EXPECT_EQ(u.str(), "unix:/tmp/x.sock");

    const service::Endpoint t =
        service::parseEndpoint("tcp:127.0.0.1:8080");
    EXPECT_EQ(t.kind, service::TransportKind::Tcp);
    EXPECT_EQ(t.host, "127.0.0.1");
    EXPECT_EQ(t.port, 8080);
    EXPECT_EQ(t.str(), "tcp:127.0.0.1:8080");

    // A bare path (no colon) is unix shorthand, so every pre-TCP
    // flag value keeps working.
    const service::Endpoint bare = service::parseEndpoint("/tmp/y.sock");
    EXPECT_EQ(bare.kind, service::TransportKind::Unix);
    EXPECT_EQ(bare.path, "/tmp/y.sock");
}

TEST(FrontendEndpointTest, RejectsMalformedEndpointsWithTypedConfig)
{
    for (const char *bad : {
             "unix:",              // empty path
             "tcp:host",           // missing port
             "tcp:host:",          // empty port
             "tcp:host:notaport",  // non-numeric port
             "tcp:host:99999",     // port out of range
             "tcp:host:-1",        // negative port
             "http:host:80",       // unknown scheme
         }) {
        try {
            service::parseEndpoint(bad);
            FAIL() << "accepted '" << bad << "'";
        } catch (const Error &e) {
            EXPECT_EQ(e.code(), ErrorCode::Config) << bad;
        }
    }
}

TEST(FrontendEndpointTest, UnixPathLimitIsEnforcedAtTheExactByte)
{
    const std::size_t max = service::maxUnixPathBytes();
    // Linux sockaddr_un::sun_path is 108 bytes incl. the terminator.
    ASSERT_GE(max, 90u);

    const std::string fits = "/tmp/" + std::string(max - 5, 'a');
    ASSERT_EQ(fits.size(), max);
    const service::Endpoint ok = service::parseEndpoint(fits);
    EXPECT_EQ(ok.path, fits);
    {
        // The boundary-length path must actually bind, not merely
        // parse: the limit exists to guarantee bind() gets the whole
        // path, so prove it does.
        const service::FdGuard listener = service::listenEndpoint(ok);
        EXPECT_GE(listener.get(), 0);
        const service::FdGuard peer = service::connectEndpoint(ok);
        EXPECT_GE(peer.get(), 0);
    }
    ::unlink(fits.c_str());

    const std::string over = fits + "a";
    try {
        service::parseEndpoint(over);
        FAIL() << "accepted a path the kernel would truncate";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::Config);
    }
    // The socket layer enforces it independently of the parser (a
    // caller could build an Endpoint by hand).
    service::Endpoint raw;
    raw.kind = service::TransportKind::Unix;
    raw.path = over;
    try {
        service::connectEndpoint(raw);
        FAIL() << "connect accepted a truncatable path";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::Config);
    }
}

TEST(FrontendEndpointTest, TcpServerRoundTripsOnAnEphemeralPort)
{
    service::ServerOptions opts;
    opts.endpoint = "tcp:127.0.0.1:0"; // kernel picks the port
    opts.workers = 1;
    service::Server server(opts);
    server.start();
    const std::string bound = server.boundEndpoint();
    EXPECT_NE(bound, "tcp:127.0.0.1:0") << "port 0 must resolve";
    std::thread runner([&server] { server.run(); });

    service::ClientOptions copts;
    copts.endpoint = bound;
    service::ServiceClient client(copts);
    const service::CallResult health =
        client.call("{\"id\":1,\"query\":\"health\"}");
    ASSERT_EQ(health.status, service::CallStatus::Ok);
    const JsonValue resp = service::parseJson(health.line);
    EXPECT_TRUE(resp.find("ready")->boolean());

    server.requestStop();
    runner.join();
}

// ---------------------------------------------------------------------
// The frontend against real forked shards.
// ---------------------------------------------------------------------

pid_t
spawnServe(const std::string &endpoint)
{
    const pid_t pid = ::fork();
    if (pid == 0) {
        ::execl(XYLEM_SERVE_BIN, "xylem_serve", "--endpoint",
                endpoint.c_str(), "--jobs", "1", "--queue-capacity",
                "32", "--quiet", static_cast<char *>(nullptr));
        ::_exit(127); // exec failed
    }
    return pid;
}

void
awaitServe(const std::string &endpoint)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < deadline) {
        try {
            service::FdGuard fd = service::connectEndpoint(endpoint);
            return;
        } catch (const Error &) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
    }
    FAIL() << "daemon never came up on " << endpoint;
}

void
stopServe(pid_t pid)
{
    if (pid <= 0)
        return;
    ::kill(pid, SIGTERM);
    int status = 0;
    ::waitpid(pid, &status, 0);
}

/** Two real shards plus an in-process frontend. */
class ScaleOutFrontendTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        for (int s = 0; s < 2; ++s) {
            shard_eps_.push_back(
                testPath(("shard" + std::to_string(s)).c_str(),
                         ".sock"));
            shard_pids_.push_back(spawnServe(shard_eps_.back()));
            ASSERT_GT(shard_pids_.back(), 0);
        }
        for (const std::string &ep : shard_eps_)
            awaitServe(ep);

        frontend::FrontendOptions opts;
        opts.endpoint = testPath("router", ".sock");
        opts.shards = shard_eps_;
        // Deterministic tests: no background probing, shard state
        // changes only through on-path demotion.
        opts.healthIntervalSeconds = 0.0;
        router_ = std::make_unique<frontend::Frontend>(opts);
        router_->start();
        router_thread_ = std::thread([this] { router_->run(); });
    }

    void
    TearDown() override
    {
        if (router_) {
            router_->requestStop();
            if (router_thread_.joinable())
                router_thread_.join();
        }
        for (const pid_t pid : shard_pids_)
            stopServe(pid);
    }

    /** One call through the frontend (fresh connection). */
    service::CallResult
    viaFrontend(const std::string &frame)
    {
        service::ClientOptions copts;
        copts.endpoint = router_->boundEndpoint();
        service::ServiceClient client(copts);
        return client.call(frame);
    }

    /** A counter from a daemon's metrics verb (0 when absent). */
    static double
    wireCounter(const std::string &endpoint, const std::string &name)
    {
        service::ClientOptions copts;
        copts.endpoint = endpoint;
        service::ServiceClient client(copts);
        const service::CallResult r =
            client.call("{\"id\":7,\"query\":\"metrics\"}");
        if (r.status != service::CallStatus::Ok)
            return 0.0;
        const JsonValue resp = service::parseJson(r.line);
        const JsonValue *metrics = resp.find("metrics");
        const JsonValue *counters =
            metrics ? metrics->find("counters") : nullptr;
        const JsonValue *c = counters ? counters->find(name) : nullptr;
        return c && c->isNumber() ? c->number() : 0.0;
    }

    /** Poll a counter until it reaches `expected` (the daemon sends
     *  the response bytes before bumping its counters, so a fast
     *  client can observe the answer first); returns the last read. */
    static double
    awaitCounter(const std::string &endpoint, const std::string &name,
                 double expected)
    {
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(5);
        double value = wireCounter(endpoint, name);
        while (value < expected &&
               std::chrono::steady_clock::now() < deadline) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            value = wireCounter(endpoint, name);
        }
        return value;
    }

    std::size_t
    ringOwner(const std::string &frame) const
    {
        const frontend::HashRing ring(shard_eps_.size(),
                                      router_->options().ringReplicas);
        return ring.owner(
            service::scenarioKey(service::parseRequest(frame)));
    }

    std::vector<std::string> shard_eps_;
    std::vector<pid_t> shard_pids_;
    std::unique_ptr<frontend::Frontend> router_;
    std::thread router_thread_;
};

TEST_F(ScaleOutFrontendTest, RoutesAScenarioToItsRingOwnerOnly)
{
    const std::string frame = steadyFrame(1, "FFT", 2.5);
    const std::size_t owner = ringOwner(frame);

    const double before_owner =
        wireCounter(shard_eps_[owner], "service.responses");
    const double before_other =
        wireCounter(shard_eps_[1 - owner], "service.responses");

    for (int i = 0; i < 3; ++i) {
        const service::CallResult r = viaFrontend(frame);
        ASSERT_EQ(r.status, service::CallStatus::Ok) << r.message;
    }

    // All three solves landed on the ring owner; the other shard's
    // solve counter never moved — that is the cache-affinity claim.
    EXPECT_EQ(awaitCounter(shard_eps_[owner], "service.responses",
                           before_owner + 3.0),
              before_owner + 3.0);
    EXPECT_EQ(wireCounter(shard_eps_[1 - owner], "service.responses"),
              before_other);
}

TEST_F(ScaleOutFrontendTest, ShardTypedErrorsPassThroughVerbatim)
{
    // "NoSuchApp" parses at the frontend but fails workload lookup in
    // the shard: the client must see the shard's typed Config error,
    // not a frontend rewrite. Compare against a direct shard call.
    const std::string frame = steadyFrame(21, "NoSuchApp", 2.5);
    const std::size_t owner = ringOwner(frame);

    const service::CallResult via = viaFrontend(frame);
    ASSERT_EQ(via.status, service::CallStatus::ErrorResponse);
    EXPECT_EQ(via.errorCode, "config");

    service::ClientOptions copts;
    copts.endpoint = shard_eps_[owner];
    service::ServiceClient direct_client(copts);
    const service::CallResult direct = direct_client.call(frame);
    ASSERT_EQ(direct.status, service::CallStatus::ErrorResponse);
    EXPECT_EQ(via.line, direct.line);
}

TEST_F(ScaleOutFrontendTest, ExpiredDeadlinesComeBackTyped)
{
    // A microscopic budget cannot survive a cold solve; whether the
    // frontend or the shard notices first, the client must get the
    // typed deadline-exceeded answer, never a hang or a cut socket.
    const service::CallResult r =
        viaFrontend(steadyFrame(31, "LU", 3.0, 16, 0.01));
    ASSERT_EQ(r.status, service::CallStatus::ErrorResponse);
    EXPECT_EQ(r.errorCode, "deadline-exceeded");
}

TEST_F(ScaleOutFrontendTest, FailsOverWhenTheOwnerShardDies)
{
    const std::string frame = steadyFrame(41, "Radix", 2.0);
    const std::size_t owner = ringOwner(frame);

    // Warm the route, then kill the owner.
    ASSERT_EQ(viaFrontend(frame).status, service::CallStatus::Ok);
    stopServe(shard_pids_[owner]);
    shard_pids_[owner] = -1;

    const double rerouted_before =
        wireCounter(router_->boundEndpoint(), "frontend.rerouted");
    const service::CallResult r = viaFrontend(frame);
    ASSERT_EQ(r.status, service::CallStatus::Ok) << r.message;
    EXPECT_GT(wireCounter(router_->boundEndpoint(), "frontend.rerouted"),
              rerouted_before);
    // The survivor answers bit-identically (engine determinism): the
    // reroute changed where, never what.
    const JsonValue resp = service::parseJson(r.line);
    EXPECT_TRUE(resp.find("ok")->boolean());
}

TEST_F(ScaleOutFrontendTest, TotalOutageYieldsTypedUnavailable)
{
    for (pid_t &pid : shard_pids_) {
        stopServe(pid);
        pid = -1;
    }
    const service::CallResult r = viaFrontend(steadyFrame(51, "CG", 2.2));
    ASSERT_EQ(r.status, service::CallStatus::ErrorResponse);
    EXPECT_EQ(r.errorCode, "unavailable");
}

TEST_F(ScaleOutFrontendTest, KillingAShardMidBurstDropsNothingSilently)
{
    // Distinct scenarios so both shards carry load; kill shard 0 once
    // the burst is in flight. The contract: every admitted request is
    // answered — ok after a reroute, or a typed error — and the
    // answer count equals the request count.
    constexpr int kRequests = 6;
    const char *apps[] = {"FFT", "LU", "Radix", "Barnes", "CG", "FT"};
    std::atomic<int> responded{0};
    std::vector<service::CallResult> results(kRequests);
    std::vector<std::thread> threads;
    for (int i = 0; i < kRequests; ++i)
        threads.emplace_back([&, i] {
            service::ClientOptions copts;
            copts.endpoint = router_->boundEndpoint();
            service::ServiceClient client(copts);
            results[static_cast<std::size_t>(i)] = client.call(
                steadyFrame(static_cast<std::uint64_t>(100 + i),
                            apps[i], 2.0 + 0.1 * i, 16 + 2 * i));
            responded.fetch_add(1, std::memory_order_relaxed);
        });

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    while (responded.load(std::memory_order_relaxed) < 1 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_GE(responded.load(std::memory_order_relaxed), 1);
    ::kill(shard_pids_[0], SIGKILL);
    int status = 0;
    ::waitpid(shard_pids_[0], &status, 0);
    shard_pids_[0] = -1;

    for (auto &t : threads)
        t.join();

    int ok = 0;
    int typed = 0;
    for (const service::CallResult &r : results) {
        if (r.status == service::CallStatus::Ok) {
            ++ok;
            continue;
        }
        // Anything that is not a success must be a typed response the
        // client can switch on — never a silent drop or a raw
        // transport error surfacing through the frontend.
        ASSERT_EQ(r.status, service::CallStatus::ErrorResponse)
            << "outcome " << static_cast<int>(r.status) << ": "
            << r.message;
        EXPECT_TRUE(r.errorCode == "unavailable" ||
                    r.errorCode == "deadline-exceeded" ||
                    r.errorCode == "overloaded")
            << r.errorCode;
        ++typed;
    }
    EXPECT_EQ(ok + typed, kRequests);
    EXPECT_GE(ok, 1); // the survivor kept serving
}

TEST_F(ScaleOutFrontendTest, MetricsFanOutSumsShardCounters)
{
    // Two solves with distinct scenarios: whatever the split, the
    // frontend's merged service.responses must equal the sum of the
    // shards' counters, so dashboards read one endpoint.
    ASSERT_EQ(viaFrontend(steadyFrame(61, "FFT", 2.5)).status,
              service::CallStatus::Ok);
    ASSERT_EQ(viaFrontend(steadyFrame(62, "LU", 3.0)).status,
              service::CallStatus::Ok);

    // Let both shard counters settle (responses are written before
    // the counters tick) before comparing the merged view.
    double direct_sum = awaitCounter(shard_eps_[0], "service.responses",
                                     0.0) +
                        wireCounter(shard_eps_[1], "service.responses");
    const auto settle_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (direct_sum < 2.0 &&
           std::chrono::steady_clock::now() < settle_deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        direct_sum = wireCounter(shard_eps_[0], "service.responses") +
                     wireCounter(shard_eps_[1], "service.responses");
    }
    const double merged =
        wireCounter(router_->boundEndpoint(), "service.responses");
    EXPECT_EQ(merged, direct_sum);

    // And the health verb reports per-shard states with both up.
    service::ClientOptions copts;
    copts.endpoint = router_->boundEndpoint();
    service::ServiceClient client(copts);
    const service::CallResult h =
        client.call("{\"id\":63,\"query\":\"health\"}");
    ASSERT_EQ(h.status, service::CallStatus::Ok);
    const JsonValue resp = service::parseJson(h.line);
    EXPECT_TRUE(resp.find("ready")->boolean());
    ASSERT_NE(resp.find("shards"), nullptr);
    EXPECT_EQ(resp.find("shards")->array().size(), 2u);
}

} // namespace
