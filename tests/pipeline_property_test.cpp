/**
 * @file
 * Randomised property tests across module boundaries: energy balance
 * on random stacks, DRAM bandwidth caps under saturation, and
 * pipeline invariants that must hold for every application.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "cpu/multicore.hpp"
#include "dram/wideio.hpp"
#include "stack/stack.hpp"
#include "thermal/grid_model.hpp"
#include "verify/invariants.hpp"
#include "verify/scenario.hpp"
#include "workloads/profile.hpp"

namespace xylem {
namespace {

/**
 * Energy balance must hold for arbitrary stacks and power maps. The
 * scenarios come from the verification subsystem's shared generator,
 * so any failure reproduces from its seed in verify_test as well.
 */
TEST(PipelineProperty, EnergyBalanceOnRandomStacks)
{
    for (std::uint64_t seed = 100; seed < 110; ++seed) {
        verify::RandomScenario sc = verify::randomScenario(seed);
        sc.solver.tolerance = 1e-10;
        const auto stk = stack::buildStack(sc.spec);
        const thermal::GridModel model(stk, sc.solver);
        const auto power = verify::buildPowerMap(stk, sc);

        thermal::SolveStats stats;
        const auto field = model.solveSteady(power, &stats);
        ASSERT_TRUE(stats.converged)
            << "seed " << seed << ": residual " << stats.relativeResidual
            << " after " << stats.iterations << " iterations";
        EXPECT_LE(stats.relativeResidual, sc.solver.tolerance)
            << "seed " << seed;

        const verify::InvariantReport rep =
            verify::checkSolution(model, power, field);
        EXPECT_TRUE(rep.pass) << "seed " << seed << ": " << rep.summary();
        EXPECT_NEAR(rep.outflowW, sc.totalWatts(),
                    sc.totalWatts() * 1e-3 + 1e-6)
            << "seed " << seed;
    }
}

/** Adding pillars must never make any cell hotter (same power map). */
TEST(PipelineProperty, PillarsAreMonotonicallyGood)
{
    stack::StackSpec spec;
    spec.numDramDies = 3;
    spec.gridNx = 32;
    spec.gridNy = 32;
    spec.scheme = stack::Scheme::Base;
    const auto base = stack::buildStack(spec);
    spec.scheme = stack::Scheme::Bank;
    const auto bank = stack::buildStack(spec);
    spec.scheme = stack::Scheme::BankE;
    const auto banke = stack::buildStack(spec);

    thermal::PowerMap power(base);
    power.deposit(base.procMetal, base.grid.extent(), 15.0);
    power.deposit(base.procMetal, geometry::Rect{1e-3, 6e-3, 2e-3, 1e-3},
                  4.0);

    const thermal::GridModel m0(base, {});
    const thermal::GridModel m1(bank, {});
    const thermal::GridModel m2(banke, {});
    const auto f0 = m0.solveSteady(power);
    const auto f1 = m1.solveSteady(power);
    const auto f2 = m2.solveSteady(power);
    const std::size_t proc = static_cast<std::size_t>(base.procMetal);
    // Hotspot ordering (per-cell monotonicity does not strictly hold
    // because pillars redirect flow, but the hotspot must improve).
    EXPECT_LE(f1.maxOfLayer(proc), f0.maxOfLayer(proc) + 1e-6);
    EXPECT_LE(f2.maxOfLayer(proc), f1.maxOfLayer(proc) + 1e-6);
    // Mean temperature must improve as well.
    EXPECT_LT(f2.meanOfLayer(proc), f0.meanOfLayer(proc));
}

/** DRAM throughput can never exceed the channel data-bus capacity. */
TEST(PipelineProperty, DramBandwidthIsCapped)
{
    dram::DramConfig cfg;
    dram::WideIoDram dram(cfg);
    Rng rng(7);
    // Saturate: issue requests far faster than the device can serve.
    double done = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        done = std::max(done, dram.access(static_cast<double>(i) * 0.5,
                                          rng() & ~63ull, false));
    }
    const double bytes = 64.0 * n;
    const double achieved_gbps = bytes / done; // bytes per ns = GB/s
    // 4 channels x 64 B / tBURST(5 ns) = 51.2 GB/s theoretical peak.
    EXPECT_LE(achieved_gbps, 51.2 + 0.1);
    EXPECT_GT(achieved_gbps, 10.0); // and the model does saturate
}

/** Invariants that must hold for every application in the suite. */
class SuiteInvariantTest
    : public ::testing::TestWithParam<workloads::Profile>
{
};

TEST_P(SuiteInvariantTest, SimulationInvariants)
{
    cpu::MulticoreConfig cfg;
    cfg.instsPerThread = 30000;
    cfg.warmupInsts = 60000;
    const auto r = cpu::simulate(cfg, cpu::allCoresRunning(GetParam()));
    EXPECT_GT(r.seconds, 0.0);
    for (const auto &c : r.cores) {
        // IPC within (0, issueWidth]; all counters consistent.
        EXPECT_GT(c.ipc(), 0.0);
        EXPECT_LE(c.ipc(), 4.0);
        EXPECT_EQ(c.insts, cfg.instsPerThread);
        EXPECT_LE(c.l2Misses, c.l2Accesses);
        EXPECT_LE(c.dramAccesses, c.l2Misses);
    }
    // DRAM accounting is globally consistent: every fill/writeback
    // the cores issued is visible in the device statistics.
    std::uint64_t core_side = 0;
    for (const auto &c : r.cores)
        core_side += c.dramAccesses;
    std::uint64_t device_side = 0;
    for (const auto &die : r.dram.dies)
        device_side += die.totalAccesses();
    EXPECT_GE(device_side, core_side); // writebacks add to the device
    EXPECT_EQ(r.dram.requests, device_side);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, SuiteInvariantTest,
    ::testing::ValuesIn(workloads::suite()), [](const auto &info) {
        std::string name = info.param.name;
        for (char &ch : name)
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

} // namespace
} // namespace xylem
