/**
 * @file
 * Validation of the thermal grid model: closed-form 1D stack
 * solutions, energy balance, symmetry, linearity, solver invariants
 * (warm starts, preconditioners), and the transient integrator.
 */

#include <chrono>
#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/task_context.hpp"
#include "stack/stack.hpp"
#include "thermal/grid_model.hpp"

namespace xylem::thermal {
namespace {

using geometry::Rect;

/**
 * Hand-built stack of uniform slabs over a small grid (no extended
 * layers): with uniform power the problem is exactly one-dimensional
 * and has a closed-form solution.
 */
stack::BuiltStack
makeSlabStack(const std::vector<std::pair<double, double>> &t_lambda,
              std::size_t n = 8)
{
    stack::BuiltStack s;
    s.grid = geometry::Grid2D(Rect{0, 0, 4e-3, 4e-3}, n, n);
    int idx = 0;
    for (const auto &[t, lambda] : t_lambda) {
        stack::Layer layer{stack::LayerKind::ProcMetal,
                           "slab" + std::to_string(idx),
                           t,
                           -1,
                           idx == 0,
                           0.0,
                           geometry::Field2D(s.grid, lambda),
                           geometry::Field2D(s.grid, 2e6)};
        if (idx + 1 == static_cast<int>(t_lambda.size()))
            layer.kind = stack::LayerKind::HeatSink;
        s.layers.push_back(std::move(layer));
        ++idx;
    }
    s.procMetal = 0;
    s.heatSink = idx - 1;
    return s;
}

/** Closed-form bottom temperature rise of a uniform 1D slab stack. */
double
analyticBottomRise(const std::vector<std::pair<double, double>> &t_lambda,
                   double area, double r_conv, double power)
{
    double r = r_conv;
    // Sink node centre to top surface.
    r += t_lambda.back().first / (2.0 * t_lambda.back().second) / area;
    // Layer-centre to layer-centre hops.
    for (std::size_t l = 0; l + 1 < t_lambda.size(); ++l) {
        r += (t_lambda[l].first / (2.0 * t_lambda[l].second) +
              t_lambda[l + 1].first / (2.0 * t_lambda[l + 1].second)) /
             area;
    }
    return power * r;
}

/**
 * Solve and assert the reported statistics: converged, achieved
 * residual within the configured tolerance, and a positive iteration
 * count — a solver-tolerance regression fails here with the numbers
 * in the message instead of surfacing as a mysteriously drifted
 * temperature.
 */
TemperatureField
solveChecked(const GridModel &model, const PowerMap &power)
{
    SolveStats stats;
    const TemperatureField f = model.solveSteady(power, &stats);
    EXPECT_TRUE(stats.converged)
        << "CG did not converge: residual " << stats.relativeResidual
        << " after " << stats.iterations << " iterations";
    EXPECT_LE(stats.relativeResidual, model.options().tolerance)
        << "achieved residual above tolerance after " << stats.iterations
        << " iterations";
    EXPECT_GT(stats.iterations, 0);
    return f;
}

TEST(GridModel1D, MatchesClosedFormSeriesStack)
{
    const std::vector<std::pair<double, double>> slabs = {
        {12e-6, 12.0}, {100e-6, 120.0}, {20e-6, 1.5}, {100e-6, 120.0},
        {50e-6, 5.0},  {1e-3, 400.0}};
    const auto stk = makeSlabStack(slabs);
    SolverOptions opts;
    opts.ambientCelsius = 40.0;
    opts.convectionResistance = 0.5;
    opts.tolerance = 1e-10;
    const GridModel model(stk, opts);

    PowerMap power(stk);
    power.deposit(0, stk.grid.extent(), 10.0);
    const TemperatureField field = solveChecked(model, power);

    const double expected =
        40.0 + analyticBottomRise(slabs, stk.grid.extent().area(), 0.5,
                                  10.0);
    // Uniform power on a uniform stack: every bottom cell must match
    // the 1D closed form.
    EXPECT_NEAR(field.at(0, 0, 0), expected, 0.01);
    EXPECT_NEAR(field.maxOfLayer(0), expected, 0.01);
    EXPECT_NEAR(field.maxOfLayer(0), field.meanOfLayer(0), 1e-6);
}

TEST(GridModel1D, TemperatureDecreasesTowardsTheSink)
{
    const std::vector<std::pair<double, double>> slabs = {
        {100e-6, 120.0}, {20e-6, 1.5}, {100e-6, 120.0}, {1e-3, 400.0}};
    const auto stk = makeSlabStack(slabs);
    const GridModel model(stk, {});
    PowerMap power(stk);
    power.deposit(0, stk.grid.extent(), 5.0);
    const TemperatureField field = solveChecked(model, power);
    for (std::size_t l = 0; l + 1 < stk.layers.size(); ++l)
        EXPECT_GT(field.meanOfLayer(l), field.meanOfLayer(l + 1));
}

TEST(GridModel1D, D2DLayerCarriesTheLargestDrop)
{
    // The central claim of the paper, in miniature: with Table 1
    // parameters the hop crossing the D2D interface dominates a hop
    // between silicon layers by close to an order of magnitude.
    const std::vector<std::pair<double, double>> slabs = {
        {100e-6, 120.0}, {100e-6, 120.0}, {20e-6, 1.5},
        {100e-6, 120.0}, {1e-3, 400.0}};
    const auto stk = makeSlabStack(slabs);
    const GridModel model(stk, {});
    PowerMap power(stk);
    power.deposit(0, stk.grid.extent(), 5.0);
    const TemperatureField f = solveChecked(model, power);
    const double drop_si_si = f.meanOfLayer(0) - f.meanOfLayer(1);
    const double drop_si_d2d = f.meanOfLayer(1) - f.meanOfLayer(2);
    EXPECT_GT(drop_si_d2d, 4.0 * drop_si_si);
}

TEST(GridModelEnergy, OutflowEqualsInputPower)
{
    stack::StackSpec spec;
    spec.numDramDies = 3;
    spec.gridNx = 32;
    spec.gridNy = 32;
    const auto stk = stack::buildStack(spec);
    SolverOptions opts;
    opts.tolerance = 1e-10;
    const GridModel model(stk, opts);

    PowerMap power(stk);
    power.deposit(stk.procMetal, Rect{1e-3, 1e-3, 2e-3, 2e-3}, 11.0);
    power.deposit(stk.dramMetal[1], Rect{4e-3, 4e-3, 3e-3, 3e-3}, 2.5);
    const TemperatureField field = solveChecked(model, power);
    EXPECT_NEAR(model.heatOutflow(field), 13.5, 0.01);
}

TEST(GridModelEnergy, ZeroPowerStaysAtAmbient)
{
    stack::StackSpec spec;
    spec.numDramDies = 2;
    spec.gridNx = 16;
    spec.gridNy = 16;
    const auto stk = stack::buildStack(spec);
    const GridModel model(stk, {});
    const TemperatureField field = model.solveSteady(PowerMap(stk));
    for (double t : field.nodes())
        EXPECT_NEAR(t, model.options().ambientCelsius, 1e-9);
}

class FullStackThermalTest : public ::testing::Test
{
  protected:
    static stack::BuiltStack
    makeStack(stack::Scheme scheme)
    {
        stack::StackSpec spec;
        spec.scheme = scheme;
        spec.numDramDies = 4;
        spec.gridNx = 40;
        spec.gridNy = 40;
        return stack::buildStack(spec);
    }

    static PowerMap
    hotCornerPower(const stack::BuiltStack &stk, double watts)
    {
        PowerMap power(stk);
        // One hot core-sized region plus background power.
        power.deposit(stk.procMetal, Rect{0.2e-3, 0.2e-3, 2e-3, 2e-3},
                      watts * 0.4);
        power.deposit(stk.procMetal, stk.grid.extent(), watts * 0.6);
        return power;
    }
};

TEST_F(FullStackThermalTest, SymmetricPowerGivesSymmetricField)
{
    const auto stk = makeStack(stack::Scheme::Base);
    const GridModel model(stk, {});
    PowerMap power(stk);
    power.deposit(stk.procMetal, stk.grid.extent(), 16.0);
    const TemperatureField f = solveChecked(model, power);
    // The stack is mirror-symmetric in x and y (the TSV bus is a
    // centred horizontal bar, so x<->y swap symmetry does NOT hold).
    const std::size_t n = stk.grid.nx();
    for (std::size_t iy = 0; iy < n; ++iy) {
        for (std::size_t ix = 0; ix < n / 2; ++ix) {
            EXPECT_NEAR(f.at(0, ix, iy), f.at(0, n - 1 - ix, iy), 1e-3);
            EXPECT_NEAR(f.at(0, ix, iy), f.at(0, ix, n - 1 - iy), 1e-3);
        }
    }
}

TEST_F(FullStackThermalTest, RiseIsLinearInPower)
{
    const auto stk = makeStack(stack::Scheme::Base);
    SolverOptions opts;
    opts.tolerance = 1e-9;
    const GridModel model(stk, opts);
    const TemperatureField f1 = solveChecked(model, hotCornerPower(stk, 8));
    const TemperatureField f2 = solveChecked(model, hotCornerPower(stk, 16));
    const double amb = opts.ambientCelsius;
    for (std::size_t i = 0; i < f1.numNodes(); i += 97) {
        EXPECT_NEAR(f2.nodes()[i] - amb, 2.0 * (f1.nodes()[i] - amb),
                    2e-3);
    }
}

TEST_F(FullStackThermalTest, MorePowerIsHotterEverywhere)
{
    const auto stk = makeStack(stack::Scheme::Base);
    const GridModel model(stk, {});
    const TemperatureField f1 = solveChecked(model, hotCornerPower(stk, 8));
    const TemperatureField f2 = solveChecked(model, hotCornerPower(stk, 12));
    for (std::size_t i = 0; i < f1.numNodes(); ++i)
        EXPECT_GT(f2.nodes()[i], f1.nodes()[i] - 1e-6);
}

TEST_F(FullStackThermalTest, ShortedPillarsLowerTheHotspot)
{
    const auto base = makeStack(stack::Scheme::Base);
    const auto banke = makeStack(stack::Scheme::BankE);
    const auto prior = makeStack(stack::Scheme::Prior);
    const GridModel m_base(base, {});
    const GridModel m_banke(banke, {});
    const GridModel m_prior(prior, {});

    const PowerMap p = hotCornerPower(base, 18.0);
    const double t_base = solveChecked(m_base, p).maxOfLayer(0);
    const double t_banke = solveChecked(m_banke, p).maxOfLayer(0);
    const double t_prior = solveChecked(m_prior, p).maxOfLayer(0);

    EXPECT_LT(t_banke, t_base - 1.0);         // Xylem clearly helps
    EXPECT_NEAR(t_prior, t_base, 0.5);        // TTSVs alone do not
    EXPECT_LT(t_prior, t_base);               // ...but are not harmful
}

TEST_F(FullStackThermalTest, WarmStartDoesNotChangeTheSolution)
{
    const auto stk = makeStack(stack::Scheme::Bank);
    SolverOptions opts;
    opts.tolerance = 1e-9;
    const GridModel model(stk, opts);
    const PowerMap p = hotCornerPower(stk, 14.0);
    const TemperatureField cold = model.solveSteady(p);
    // Warm-start from a wrong-but-plausible field.
    const TemperatureField other =
        solveChecked(model, hotCornerPower(stk, 5.0));
    SolveStats stats;
    const TemperatureField warm = model.solveSteady(p, &stats, &other);
    EXPECT_TRUE(stats.converged);
    for (std::size_t i = 0; i < cold.numNodes(); i += 53)
        EXPECT_NEAR(warm.nodes()[i], cold.nodes()[i], 1e-3);
}

TEST_F(FullStackThermalTest, PreconditionersAgree)
{
    const auto stk = makeStack(stack::Scheme::Bank);
    SolverOptions jac;
    jac.tolerance = 1e-9;
    SolverOptions line = jac;
    line.preconditioner = Preconditioner::VerticalLine;
    const GridModel m_jac(stk, jac);
    const GridModel m_line(stk, line);
    const PowerMap p = hotCornerPower(stk, 14.0);
    const TemperatureField f1 = solveChecked(m_jac, p);
    const TemperatureField f2 = solveChecked(m_line, p);
    for (std::size_t i = 0; i < f1.numNodes(); i += 31)
        EXPECT_NEAR(f1.nodes()[i], f2.nodes()[i], 1e-3);
}

TEST_F(FullStackThermalTest, ApplyMatchesDiagonalOnUnitVectors)
{
    const auto stk = makeStack(stack::Scheme::Base);
    const GridModel model(stk, {});
    std::vector<double> x(model.numNodes(), 0.0), y;
    // G * constant-vector has zero entries except at grounded nodes.
    std::vector<double> ones(model.numNodes(), 1.0);
    model.apply(ones, y);
    double interior_abs = 0.0;
    for (std::size_t l = 0; l + 3 < model.numLayers(); ++l)
        interior_abs +=
            std::abs(y[l * model.cellsPerLayer() + model.cellsPerLayer() / 2]);
    EXPECT_NEAR(interior_abs, 0.0, 1e-12);
}

// ---------------------------------------------------------------------
// Transient solver
// ---------------------------------------------------------------------

TEST(Transient, SteadyStateIsAFixedPoint)
{
    stack::StackSpec spec;
    spec.numDramDies = 2;
    spec.gridNx = 24;
    spec.gridNy = 24;
    const auto stk = stack::buildStack(spec);
    const GridModel model(stk, {});
    PowerMap power(stk);
    power.deposit(stk.procMetal, stk.grid.extent(), 12.0);
    const TemperatureField steady = solveChecked(model, power);
    const TemperatureField next =
        model.stepTransient(steady, power, 0.01);
    for (std::size_t i = 0; i < steady.numNodes(); i += 17)
        EXPECT_NEAR(next.nodes()[i], steady.nodes()[i], 1e-4);
}

TEST(Transient, HeatsUpMonotonicallyFromAmbient)
{
    stack::StackSpec spec;
    spec.numDramDies = 2;
    spec.gridNx = 24;
    spec.gridNy = 24;
    const auto stk = stack::buildStack(spec);
    const GridModel model(stk, {});
    PowerMap power(stk);
    power.deposit(stk.procMetal, stk.grid.extent(), 12.0);

    TemperatureField f = model.ambientField();
    double prev = f.maxOfLayer(0);
    for (int i = 0; i < 10; ++i) {
        f = model.stepTransient(f, power, 0.01);
        const double cur = f.maxOfLayer(0);
        EXPECT_GE(cur, prev - 1e-9);
        prev = cur;
    }
    EXPECT_GT(prev, model.options().ambientCelsius + 1.0);
}

TEST(Transient, ConvergesToTheSteadyState)
{
    const std::vector<std::pair<double, double>> slabs = {
        {100e-6, 120.0}, {20e-6, 1.5}, {100e-6, 120.0}, {1e-3, 400.0}};
    const auto stk = makeSlabStack(slabs, 4);
    SolverOptions opts;
    opts.tolerance = 1e-10;
    const GridModel model(stk, opts);
    PowerMap power(stk);
    power.deposit(0, stk.grid.extent(), 5.0);
    const TemperatureField steady = solveChecked(model, power);

    TemperatureField f = model.ambientField();
    // Thin slabs: the time constant is far below a second.
    for (int i = 0; i < 60; ++i)
        f = model.stepTransient(f, power, 0.05);
    EXPECT_NEAR(f.maxOfLayer(0), steady.maxOfLayer(0), 0.05);
}

TEST(Transient, CoolsDownAfterPowerRemoval)
{
    stack::StackSpec spec;
    spec.numDramDies = 2;
    spec.gridNx = 24;
    spec.gridNy = 24;
    const auto stk = stack::buildStack(spec);
    const GridModel model(stk, {});
    PowerMap power(stk);
    power.deposit(stk.procMetal, stk.grid.extent(), 12.0);
    TemperatureField f = solveChecked(model, power);
    const double hot = f.maxOfLayer(0);
    f = model.stepTransient(f, PowerMap(stk), 0.05);
    EXPECT_LT(f.maxOfLayer(0), hot);
    EXPECT_GT(f.maxOfLayer(0), model.options().ambientCelsius);
}

TEST(Transient, RejectsNonPositiveDt)
{
    stack::StackSpec spec;
    spec.numDramDies = 1;
    spec.gridNx = 8;
    spec.gridNy = 8;
    const auto stk = stack::buildStack(spec);
    const GridModel model(stk, {});
    const TemperatureField f = model.ambientField();
    EXPECT_THROW(model.stepTransient(f, PowerMap(stk), 0.0), PanicError);
}

// ---------------------------------------------------------------------
// PowerMap / TemperatureField plumbing
// ---------------------------------------------------------------------

TEST(PowerMap, LayersAndTotals)
{
    stack::StackSpec spec;
    spec.numDramDies = 2;
    spec.gridNx = 16;
    spec.gridNy = 16;
    const auto stk = stack::buildStack(spec);
    PowerMap p(stk);
    EXPECT_EQ(p.numLayers(), stk.layers.size());
    EXPECT_DOUBLE_EQ(p.totalPower(), 0.0);
    p.deposit(stk.procMetal, Rect{0, 0, 4e-3, 4e-3}, 3.0);
    p.deposit(stk.dramMetal[0], Rect{0, 0, 8e-3, 8e-3}, 1.0);
    EXPECT_NEAR(p.totalPower(), 4.0, 1e-9);
    EXPECT_NEAR(p.layerPower(stk.procMetal), 3.0, 1e-9);
    EXPECT_THROW(p.layer(-1), PanicError);
    EXPECT_THROW(p.layer(100), PanicError);
}

TEST(TemperatureField, AccessorsAndHotspot)
{
    TemperatureField f(2, 4, 4, 0, 25.0);
    EXPECT_EQ(f.numNodes(), 32u);
    f.at(1, 2, 3) = 90.0;
    EXPECT_DOUBLE_EQ(f.maxOfLayer(1), 90.0);
    EXPECT_DOUBLE_EQ(f.maxOfLayer(0), 25.0);
    std::size_t ix, iy;
    f.hotspot(1, ix, iy);
    EXPECT_EQ(ix, 2u);
    EXPECT_EQ(iy, 3u);
    EXPECT_THROW(f.at(2, 0, 0), PanicError);
}

TEST(TemperatureField, MaxInRect)
{
    TemperatureField f(1, 4, 4, 0, 20.0);
    f.at(0, 0, 0) = 50.0;
    f.at(0, 3, 3) = 80.0;
    const Rect die{0, 0, 1, 1};
    EXPECT_DOUBLE_EQ(f.maxInRect(0, Rect{0, 0, 0.5, 0.5}, die), 50.0);
    EXPECT_DOUBLE_EQ(f.maxInRect(0, Rect{0.5, 0.5, 0.5, 0.5}, die), 80.0);
    // Degenerate rect containing no cell centre falls back to the max.
    EXPECT_DOUBLE_EQ(f.maxInRect(0, Rect{0.49, 0.49, 0.02, 0.02}, die),
                     80.0);
}

TEST(TemperatureField, MeanOfLayer)
{
    TemperatureField f(1, 2, 2, 0, 10.0);
    f.at(0, 0, 0) = 30.0;
    EXPECT_DOUBLE_EQ(f.meanOfLayer(0), 15.0);
}

// ---------------------------------------------------------------------
// Task-context hooks (fault-tolerance layer)
// ---------------------------------------------------------------------

stack::BuiltStack
contextTestStack()
{
    return makeSlabStack({{50e-6, 50.0}, {100e-6, 120.0}, {1e-3, 400.0}},
                         6);
}

TEST(GridModelTaskContext, StrictSolverRaisesOnForcedNonConvergence)
{
    const auto stk = contextTestStack();
    const GridModel model(stk, SolverOptions{});
    PowerMap power(stk);
    power.deposit(0, stk.grid.extent(), 5.0);

    TaskContext ctx;
    ctx.strictSolver = true;
    ctx.forceCgNonConvergence = true;
    ScopedTaskContext scope(ctx);
    try {
        model.solveSteady(power);
        FAIL() << "expected Error(SolverNonConvergence)";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::SolverNonConvergence);
    }
}

TEST(GridModelTaskContext, NonStrictForcedNonConvergenceOnlyWarns)
{
    const auto stk = contextTestStack();
    const GridModel model(stk, SolverOptions{});
    PowerMap power(stk);
    power.deposit(0, stk.grid.extent(), 5.0);

    TaskContext ctx; // strictSolver = false: legacy warn-only path
    ctx.forceCgNonConvergence = true;
    ScopedTaskContext scope(ctx);
    SolveStats stats;
    EXPECT_NO_THROW(model.solveSteady(power, &stats));
    EXPECT_FALSE(stats.converged);
    EXPECT_EQ(stats.iterations, 0);
}

TEST(GridModelTaskContext, DenseRungLiftsTheForcedFault)
{
    // At the dense escalation rung the CG-specific fault no longer
    // applies (the dense path replaces CG; a direct GridModel caller
    // simply solves normally again).
    const auto stk = contextTestStack();
    const GridModel model(stk, SolverOptions{});
    PowerMap power(stk);
    power.deposit(0, stk.grid.extent(), 5.0);

    TaskContext ctx;
    ctx.strictSolver = true;
    ctx.forceCgNonConvergence = true;
    ctx.escalation = static_cast<int>(Escalation::DenseSolve);
    ScopedTaskContext scope(ctx);
    SolveStats stats;
    EXPECT_NO_THROW(model.solveSteady(power, &stats));
    EXPECT_TRUE(stats.converged);
}

TEST(GridModelTaskContext, ExpiredDeadlineAbortsTheSolve)
{
    const auto stk = contextTestStack();
    SolverOptions opts;
    opts.tolerance = 1e-12; // enough iterations to hit a checkpoint
    const GridModel model(stk, opts);
    PowerMap power(stk);
    power.deposit(0, stk.grid.extent(), 5.0);

    TaskContext ctx;
    ctx.hasDeadline = true;
    ctx.deadline = std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1); // already expired
    ScopedTaskContext scope(ctx);
    try {
        model.solveSteady(power);
        FAIL() << "expected Error(DeadlineExceeded)";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::DeadlineExceeded);
    }
}

TEST(GridModelTaskContext, AlternatePreconditionerRungStillConverges)
{
    const auto stk = contextTestStack();
    SolverOptions opts;
    opts.preconditioner = Preconditioner::VerticalLine;
    const GridModel model(stk, opts);
    PowerMap power(stk);
    power.deposit(0, stk.grid.extent(), 5.0);

    const TemperatureField normal = model.solveSteady(power);

    TaskContext ctx;
    ctx.strictSolver = true;
    ctx.escalation =
        static_cast<int>(Escalation::AlternatePreconditioner);
    ScopedTaskContext scope(ctx);
    SolveStats stats;
    const TemperatureField alt = model.solveSteady(power, &stats);
    EXPECT_TRUE(stats.converged);
    for (std::size_t i = 0; i < normal.numNodes(); ++i)
        EXPECT_NEAR(alt.nodes()[i], normal.nodes()[i], 1e-3);
}

TEST(GridModelTaskContext, ColdStartRungIgnoresTheWarmStart)
{
    const auto stk = contextTestStack();
    const GridModel model(stk, SolverOptions{});
    PowerMap power(stk);
    power.deposit(0, stk.grid.extent(), 5.0);
    const TemperatureField prior = model.solveSteady(power);

    // Warm-started from the exact solution, the solve is ~free...
    SolveStats warm_stats;
    model.solveSteady(power, &warm_stats, &prior);
    // ...but on the cold-start rung the warm start must be ignored.
    TaskContext ctx;
    ctx.escalation = static_cast<int>(Escalation::ColdStart);
    ScopedTaskContext scope(ctx);
    SolveStats cold_stats;
    model.solveSteady(power, &cold_stats, &prior);
    EXPECT_GT(cold_stats.iterations, warm_stats.iterations);
}

} // namespace
} // namespace xylem::thermal
