/**
 * @file
 * Golden-file regression tests: small, fast-shaped versions of the
 * paper's Fig. 7 (temperature sweep) and Fig. 9 (iso-temperature
 * frequency boost) experiments, recomputed and diffed against CSVs
 * checked into tests/golden/. Any drift in the thermal model, power
 * model or simulator shows up as a numeric diff here with a named
 * column, instead of as a silently different figure.
 *
 * Regenerate after an intentional model change with
 *
 *   XYLEM_UPDATE_GOLDEN=1 ./golden_test
 *
 * and review the CSV diff like any other code change.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "xylem/experiments.hpp"

namespace xylem::core {
namespace {

using stack::Scheme;

/** Same shrink knobs as experiments_test, so a golden run stays fast. */
ExperimentConfig
tiny()
{
    ExperimentConfig cfg = ExperimentConfig::small();
    cfg.base.cpu.instsPerThread = 60000;
    cfg.base.cpu.warmupInsts = 200000;
    return cfg;
}

std::string
goldenPath(const std::string &name)
{
    return std::string(XYLEM_GOLDEN_DIR) + "/" + name;
}

bool
updateRequested()
{
    const char *env = std::getenv("XYLEM_UPDATE_GOLDEN");
    return env != nullptr && *env != '\0';
}

std::string
fmt(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", v);
    return buf;
}

void
writeGolden(const std::string &path, const std::string &header,
            const std::vector<std::string> &rows)
{
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write golden file " << path;
    out << header << "\n";
    for (const auto &row : rows)
        out << row << "\n";
}

/** Parsed golden CSV: header fields + numeric-or-text cells per row. */
std::vector<std::vector<std::string>>
readGolden(const std::string &path, const std::string &header)
{
    std::ifstream in(path);
    EXPECT_TRUE(in) << "missing golden file " << path
                    << " — run with XYLEM_UPDATE_GOLDEN=1 to create it";
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, header) << path << ": header drift";
    std::vector<std::vector<std::string>> rows;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::vector<std::string> cells;
        std::stringstream ss(line);
        std::string cell;
        while (std::getline(ss, cell, ','))
            cells.push_back(cell);
        rows.push_back(std::move(cells));
    }
    return rows;
}

double
num(const std::string &cell)
{
    return std::strtod(cell.c_str(), nullptr);
}

constexpr double kTempTolC = 0.1;   ///< hotspot agreement [°C]
constexpr double kFreqTolGHz = 5e-4; ///< 0.5 MHz on boosted frequency
constexpr double kPctTol = 0.1;     ///< perf/power/energy percentages

TEST(Golden, Fig07TemperatureSweepSmall)
{
    const std::string header =
        "app,scheme,freq_ghz,proc_hotspot_c,dram_bottom_hotspot_c,"
        "proc_power_w,dram_power_w";
    const auto sweep =
        runTemperatureSweep(tiny(), {Scheme::Base, Scheme::BankE});
    ASSERT_FALSE(sweep.empty());

    std::vector<std::string> rows;
    for (const auto &e : sweep)
        rows.push_back(e.app + "," + stack::toString(e.scheme) + "," +
                       fmt(e.freqGHz) + "," + fmt(e.procHotspotC) + "," +
                       fmt(e.dramBottomHotspotC) + "," +
                       fmt(e.procPowerW) + "," + fmt(e.dramPowerW));

    const std::string path = goldenPath("fig07_small.csv");
    if (updateRequested()) {
        writeGolden(path, header, rows);
        GTEST_SKIP() << "golden file regenerated: " << path;
    }

    const auto golden = readGolden(path, header);
    ASSERT_EQ(golden.size(), sweep.size()) << "sweep shape changed";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const auto &g = golden[i];
        const auto &e = sweep[i];
        ASSERT_EQ(g.size(), 7u) << "row " << i;
        EXPECT_EQ(g[0], e.app) << "row " << i;
        EXPECT_EQ(g[1], stack::toString(e.scheme)) << "row " << i;
        EXPECT_NEAR(num(g[2]), e.freqGHz, 1e-9) << "row " << i;
        EXPECT_NEAR(num(g[3]), e.procHotspotC, kTempTolC)
            << e.app << "/" << g[1] << "@" << g[2]
            << ": processor hotspot drifted";
        EXPECT_NEAR(num(g[4]), e.dramBottomHotspotC, kTempTolC)
            << e.app << "/" << g[1] << "@" << g[2]
            << ": DRAM hotspot drifted";
        EXPECT_NEAR(num(g[5]), e.procPowerW,
                    0.01 + 0.001 * num(g[5]))
            << e.app << "/" << g[1] << "@" << g[2]
            << ": processor power drifted";
        EXPECT_NEAR(num(g[6]), e.dramPowerW,
                    0.01 + 0.001 * num(g[6]))
            << e.app << "/" << g[1] << "@" << g[2]
            << ": DRAM power drifted";
    }
}

TEST(Golden, Fig09BoostSmall)
{
    const std::string header =
        "app,scheme,ref_temp_c,freq_ghz,freq_gain_mhz,perf_gain_pct,"
        "power_increase_pct,energy_change_pct";
    const auto boost =
        runBoostExperiment(tiny(), {Scheme::Bank, Scheme::BankE});
    ASSERT_FALSE(boost.empty());

    std::vector<std::string> rows;
    for (const auto &e : boost)
        rows.push_back(e.app + "," + stack::toString(e.scheme) + "," +
                       fmt(e.refTempC) + "," + fmt(e.freqGHz) + "," +
                       fmt(e.freqGainMHz) + "," + fmt(e.perfGainPct) +
                       "," + fmt(e.powerIncreasePct) + "," +
                       fmt(e.energyChangePct));

    const std::string path = goldenPath("fig09_small.csv");
    if (updateRequested()) {
        writeGolden(path, header, rows);
        GTEST_SKIP() << "golden file regenerated: " << path;
    }

    const auto golden = readGolden(path, header);
    ASSERT_EQ(golden.size(), boost.size()) << "boost shape changed";
    for (std::size_t i = 0; i < boost.size(); ++i) {
        const auto &g = golden[i];
        const auto &e = boost[i];
        ASSERT_EQ(g.size(), 8u) << "row " << i;
        EXPECT_EQ(g[0], e.app) << "row " << i;
        EXPECT_EQ(g[1], stack::toString(e.scheme)) << "row " << i;
        EXPECT_NEAR(num(g[2]), e.refTempC, kTempTolC)
            << e.app << "/" << g[1] << ": reference temperature drifted";
        EXPECT_NEAR(num(g[3]), e.freqGHz, kFreqTolGHz)
            << e.app << "/" << g[1] << ": boosted frequency drifted";
        EXPECT_NEAR(num(g[4]), e.freqGainMHz, 1000.0 * kFreqTolGHz)
            << e.app << "/" << g[1] << ": frequency gain drifted";
        EXPECT_NEAR(num(g[5]), e.perfGainPct, kPctTol)
            << e.app << "/" << g[1] << ": performance gain drifted";
        EXPECT_NEAR(num(g[6]), e.powerIncreasePct, kPctTol)
            << e.app << "/" << g[1] << ": power increase drifted";
        EXPECT_NEAR(num(g[7]), e.energyChangePct, kPctTol)
            << e.app << "/" << g[1] << ": energy change drifted";
    }
}

} // namespace
} // namespace xylem::core
