/**
 * @file
 * The verification subsystem's differential suite: the iterative grid
 * solver (both preconditioners, warm and cold starts) against the
 * dense Cholesky reference on randomized scenarios, the analytic slab
 * oracles, the transient stepper against its steady fixed point, and
 * the invariant checkers (including proof that they actually detect
 * corrupted fields).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "thermal/grid_model.hpp"
#include "verify/dense_solver.hpp"
#include "verify/invariants.hpp"
#include "verify/oracles.hpp"
#include "verify/scenario.hpp"

namespace xylem::verify {
namespace {

using thermal::GridModel;
using thermal::Preconditioner;
using thermal::SolveStats;
using thermal::SolverOptions;
using thermal::TemperatureField;

/**
 * Every solve in this suite must report convergence AND an achieved
 * residual within the configured tolerance; a tolerance regression
 * fails loudly here instead of drifting into the figures.
 */
void
expectConverged(const SolveStats &stats, const SolverOptions &opts,
                const char *what)
{
    EXPECT_TRUE(stats.converged)
        << what << ": CG reported non-convergence, residual "
        << stats.relativeResidual << " after " << stats.iterations
        << " iterations";
    EXPECT_LE(stats.relativeResidual, opts.tolerance)
        << what << ": achieved residual above tolerance after "
        << stats.iterations << " iterations";
    EXPECT_GT(stats.iterations, 0) << what;
}

double
maxAbsDiff(const TemperatureField &a, const TemperatureField &b)
{
    EXPECT_EQ(a.numNodes(), b.numNodes());
    double worst = 0.0;
    for (std::size_t i = 0; i < a.numNodes(); ++i)
        worst = std::max(worst, std::abs(a.nodes()[i] - b.nodes()[i]));
    return worst;
}

// ---------------------------------------------------------------------
// Dense Cholesky core
// ---------------------------------------------------------------------

TEST(DenseSpd, SolvesAHandCheckableSystem)
{
    // A = [[4,2,0],[2,5,1],[0,1,3]], x = [1,2,3] => b = A x.
    const std::vector<double> a = {4, 2, 0, 2, 5, 1, 0, 1, 3};
    const DenseSpd chol(a, 3);
    const std::vector<double> x = chol.solve({8.0, 15.0, 11.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
    EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(DenseSpd, RejectsIndefiniteMatrices)
{
    const std::vector<double> a = {1, 2, 2, 1}; // eigenvalues 3, -1
    EXPECT_THROW(DenseSpd(a, 2), PanicError);
}

TEST(DenseMatrix, AgreesWithApplyOnRandomStacks)
{
    // The dense assembly and the matrix-free apply() are written
    // independently; they must describe the same operator.
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        const RandomScenario sc = randomScenario(seed);
        const auto stk = stack::buildStack(sc.spec);
        const GridModel model(stk, sc.solver);
        const std::size_t n = model.numNodes();
        const std::vector<double> dense = model.denseMatrix();

        // Symmetry of the assembled matrix.
        for (std::size_t i = 0; i < n; i += 7)
            for (std::size_t j = i; j < n; j += 13)
                ASSERT_DOUBLE_EQ(dense[i * n + j], dense[j * n + i]);

        Rng rng(seed + 99);
        std::vector<double> x(n), y_apply(n), y_dense(n, 0.0);
        for (auto &v : x)
            v = rng.uniform(-1.0, 1.0);
        model.apply(x, y_apply);
        for (std::size_t i = 0; i < n; ++i) {
            double acc = 0.0;
            const double *row = dense.data() + i * n;
            for (std::size_t j = 0; j < n; ++j)
                acc += row[j] * x[j];
            y_dense[i] = acc;
        }
        double scale = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            scale = std::max(scale, std::abs(y_apply[i]));
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_NEAR(y_apply[i], y_dense[i], 1e-9 * (scale + 1.0))
                << "seed " << seed << " node " << i;
    }
}

// ---------------------------------------------------------------------
// Randomized differential suite: CG vs dense reference
// ---------------------------------------------------------------------

class DifferentialTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DifferentialTest, CgMatchesDenseReference)
{
    const std::uint64_t seed = GetParam();
    RandomScenario sc = randomScenario(seed);
    sc.solver.tolerance = 1e-10; // tight so the 1e-6 K bound is honest
    const auto stk = stack::buildStack(sc.spec);
    const auto power = buildPowerMap(stk, sc);

    // The trusted answer: direct factorisation, no CG code involved.
    const GridModel jacobi(stk, sc.solver);
    const TemperatureField ref = referenceSolveSteady(jacobi, power);

    for (Preconditioner pre :
         {Preconditioner::Jacobi, Preconditioner::VerticalLine,
          Preconditioner::Multigrid}) {
        SolverOptions opts = sc.solver;
        opts.preconditioner = pre;
        const GridModel model(stk, opts);
        const char *name = thermal::toString(pre);

        SolveStats cold_stats;
        const TemperatureField cold = model.solveSteady(power,
                                                        &cold_stats);
        expectConverged(cold_stats, opts, name);
        EXPECT_LT(maxAbsDiff(cold, ref), 1e-6)
            << "seed " << seed << " cold " << name;

        // Warm start from a deliberately wrong scaling of the truth:
        // must converge back to the same answer.
        TemperatureField guess = ref;
        const double ambient = opts.ambientCelsius;
        for (double &v : guess.nodes())
            v = ambient + 0.8 * (v - ambient);
        SolveStats warm_stats;
        const TemperatureField warm =
            model.solveSteady(power, &warm_stats, &guess);
        expectConverged(warm_stats, opts, name);
        EXPECT_LT(maxAbsDiff(warm, ref), 1e-6)
            << "seed " << seed << " warm " << name;
        EXPECT_LE(warm_stats.iterations, cold_stats.iterations)
            << "warm start should not cost extra iterations (seed "
            << seed << ", " << name << ")";
    }
}

// 26 scenarios x 3 preconditioners x {cold, warm}.
INSTANTIATE_TEST_SUITE_P(RandomScenarios, DifferentialTest,
                         ::testing::Range<std::uint64_t>(0, 26));

TEST(Differential, SixteenBySixteenStackMatchesReference)
{
    // The largest shape the dense reference is meant to cover.
    RandomScenario sc = randomScenario(7);
    sc.spec.gridNx = 16;
    sc.spec.gridNy = 16;
    sc.spec.numDramDies = 2;
    sc.solver.tolerance = 1e-10;
    const auto stk = stack::buildStack(sc.spec);
    const auto power = buildPowerMap(stk, sc);
    const GridModel model(stk, sc.solver);
    SolveStats stats;
    const TemperatureField cg = model.solveSteady(power, &stats);
    expectConverged(stats, sc.solver, "16x16");
    EXPECT_LT(maxAbsDiff(cg, referenceSolveSteady(model, power)), 1e-6);
}

TEST(Differential, TransientStepMatchesDenseReference)
{
    for (std::uint64_t seed : {3ull, 11ull, 19ull}) {
        RandomScenario sc = randomScenario(seed);
        // Tighter than the steady tests: at small dt the RHS is
        // dominated by the C/dt terms, so a relative-residual stop
        // leaves a larger absolute temperature error.
        sc.solver.tolerance = 1e-13;
        const auto stk = stack::buildStack(sc.spec);
        const auto power = buildPowerMap(stk, sc);
        const GridModel model(stk, sc.solver);

        // Start half-way to steady state and step from there.
        TemperatureField state = referenceSolveSteady(model, power);
        const double ambient = sc.solver.ambientCelsius;
        for (double &v : state.nodes())
            v = ambient + 0.5 * (v - ambient);

        for (double dt : {1e-4, 0.02}) {
            SolveStats stats;
            const TemperatureField stepped =
                model.stepTransient(state, power, dt, &stats);
            EXPECT_TRUE(stats.converged || stats.relativeResidual < 1e-11)
                << "transient seed " << seed << " dt " << dt
                << ": residual " << stats.relativeResidual;
            const TemperatureField ref =
                referenceStepTransient(model, state, power, dt);
            EXPECT_LT(maxAbsDiff(stepped, ref), 1e-6)
                << "seed " << seed << " dt " << dt;
        }
    }
}

TEST(Differential, TransientHoldsTheSteadyFixedPoint)
{
    RandomScenario sc = randomScenario(5);
    sc.solver.tolerance = 1e-10;
    const auto stk = stack::buildStack(sc.spec);
    const auto power = buildPowerMap(stk, sc);
    const GridModel model(stk, sc.solver);
    const TemperatureField steady = model.solveSteady(power);

    // The steady state is a fixed point of the implicit-Euler map for
    // every dt; stepping must stay put to solver accuracy.
    TemperatureField state = steady;
    for (double dt : {1e-3, 0.05, 1.0})
        state = model.stepTransient(state, power, dt);
    EXPECT_LT(maxAbsDiff(state, steady), 1e-5);
}

TEST(Differential, TransientRelaxesToTheSteadyState)
{
    RandomScenario sc = randomScenario(9);
    sc.solver.tolerance = 1e-10;
    const auto stk = stack::buildStack(sc.spec);
    const auto power = buildPowerMap(stk, sc);
    const GridModel model(stk, sc.solver);
    const TemperatureField steady = model.solveSteady(power);

    // The slowest mode (the extended heat-sink mass discharging into
    // the convection resistance) has a time constant of tens of
    // seconds; implicit Euler is unconditionally stable, so large
    // steps shrink that mode by ~1/(1 + dt/tau) each.
    TemperatureField state = model.ambientField();
    double prev_gap = maxAbsDiff(state, steady);
    for (int i = 0; i < 60; ++i) {
        state = model.stepTransient(state, power, 20.0);
        const double gap = maxAbsDiff(state, steady);
        EXPECT_LE(gap, prev_gap + 1e-5) << "step " << i;
        prev_gap = gap;
    }
    EXPECT_LT(prev_gap, 0.05);
}

// ---------------------------------------------------------------------
// Analytic oracles
// ---------------------------------------------------------------------

/** A Table-1-flavoured five-layer slab: metal/si/d2d/si/sink. */
std::vector<SlabLayer>
paperishSlab()
{
    return {{12e-6, 12.0, 2.2e6},
            {100e-6, 120.0, 1.75e6},
            {20e-6, 1.5, 2.0e6},
            {100e-6, 120.0, 1.75e6},
            {7e-3, 400.0, 3.55e6}};
}

TEST(Oracles, SlabChainMatchesGridSolver)
{
    const auto slab = paperishSlab();
    const std::vector<double> watts = {10.0, 0.0, 0.0, 2.0, 0.0};
    SolverOptions opts;
    opts.tolerance = 1e-12;
    opts.convectionResistance = 0.15;
    opts.ambientCelsius = 45.0;

    const auto stk = buildSlabStack(slab, 8, 8);
    const GridModel model(stk, opts);
    thermal::PowerMap power(stk);
    for (std::size_t l = 0; l < slab.size(); ++l)
        if (watts[l] > 0.0)
            power.deposit(static_cast<int>(l), stk.grid.extent(),
                          watts[l]);
    SolveStats stats;
    const TemperatureField field = model.solveSteady(power, &stats);
    expectConverged(stats, opts, "slab");

    const std::vector<double> oracle =
        slabSteadyCelsius(slab, watts, opts);
    for (std::size_t l = 0; l < slab.size(); ++l) {
        const double rise = oracle[l] - opts.ambientCelsius;
        ASSERT_GT(rise, 0.0);
        for (std::size_t iy = 0; iy < stk.grid.ny(); ++iy)
            for (std::size_t ix = 0; ix < stk.grid.nx(); ++ix)
                ASSERT_NEAR(field.at(l, ix, iy), oracle[l],
                            1e-3 * rise + 1e-9) // 0.1 % acceptance
                    << "layer " << l;
    }
}

TEST(Oracles, SlabChainMatchesDenseReference)
{
    // The direct solver against the closed form: agreement here is
    // pure round-off, no iterative tolerance involved.
    const auto slab = paperishSlab();
    const std::vector<double> watts = {8.0, 0.0, 1.0, 0.0, 0.5};
    SolverOptions opts;
    opts.convectionResistance = 0.1;
    const auto stk = buildSlabStack(slab, 6, 6);
    const GridModel model(stk, opts);
    thermal::PowerMap power(stk);
    for (std::size_t l = 0; l < slab.size(); ++l)
        if (watts[l] > 0.0)
            power.deposit(static_cast<int>(l), stk.grid.extent(),
                          watts[l]);
    const TemperatureField ref = referenceSolveSteady(model, power);
    const std::vector<double> oracle =
        slabSteadyCelsius(slab, watts, opts);
    for (std::size_t l = 0; l < slab.size(); ++l)
        EXPECT_NEAR(ref.at(l, 3, 2), oracle[l],
                    1e-8 * (oracle[l] - opts.ambientCelsius) + 1e-10)
            << "layer " << l;
}

TEST(Oracles, UniformPowerClosedForm)
{
    const SlabLayer cu{1e-3, 400.0, 3.55e6};
    SolverOptions opts;
    opts.ambientCelsius = 40.0;
    opts.convectionResistance = 0.2;
    const double side = 8e-3;
    // T = ambient + P (R_conv + t / (2 λ A)).
    const double expected =
        40.0 + 5.0 * (0.2 + 0.5e-3 / (400.0 * side * side));
    EXPECT_NEAR(uniformPowerSteadyCelsius(5.0, cu, opts, side), expected,
                1e-12);

    const auto stk = buildSlabStack({cu}, 4, 4, side);
    SolverOptions tight = opts;
    tight.tolerance = 1e-12;
    const GridModel model(stk, tight);
    thermal::PowerMap power(stk);
    power.deposit(0, stk.grid.extent(), 5.0);
    const TemperatureField f = model.solveSteady(power);
    EXPECT_NEAR(f.at(0, 1, 1), expected, 1e-3 * (expected - 40.0));
}

// ---------------------------------------------------------------------
// Invariant checkers
// ---------------------------------------------------------------------

TEST(Invariants, PassOnRandomScenarios)
{
    for (std::uint64_t seed = 30; seed < 38; ++seed) {
        RandomScenario sc = randomScenario(seed);
        sc.solver.tolerance = 1e-9;
        const auto stk = stack::buildStack(sc.spec);
        const auto power = buildPowerMap(stk, sc);
        const GridModel model(stk, sc.solver);
        const TemperatureField field = model.solveSteady(power);
        const InvariantReport rep = checkSolution(model, power, field);
        EXPECT_TRUE(rep.pass)
            << "seed " << seed << ": " << rep.summary();
        EXPECT_NEAR(rep.outflowW, sc.totalWatts(),
                    1e-3 * sc.totalWatts());
        EXPECT_LE(rep.achievedResidual, sc.solver.tolerance);
    }
}

TEST(Invariants, DetectEnergyImbalance)
{
    RandomScenario sc = randomScenario(41);
    const auto stk = stack::buildStack(sc.spec);
    const auto power = buildPowerMap(stk, sc);
    const GridModel model(stk, sc.solver);
    TemperatureField field = model.solveSteady(power);
    // Inflate every rise by 10 %: outflow no longer matches power.
    for (double &v : field.nodes())
        v = sc.solver.ambientCelsius +
            1.1 * (v - sc.solver.ambientCelsius);
    const InvariantReport rep = checkSolution(model, power, field);
    EXPECT_FALSE(rep.pass);
    EXPECT_GT(rep.energyErrorRel, 0.05);
}

TEST(Invariants, DetectBelowAmbientNodes)
{
    RandomScenario sc = randomScenario(42);
    const auto stk = stack::buildStack(sc.spec);
    const auto power = buildPowerMap(stk, sc);
    const GridModel model(stk, sc.solver);
    TemperatureField field = model.solveSteady(power);
    field.nodes()[field.numNodes() / 2] = sc.solver.ambientCelsius - 1.0;
    const InvariantReport rep = checkSolution(model, power, field);
    EXPECT_FALSE(rep.pass);
    EXPECT_LT(rep.minRiseK, -0.5);
}

TEST(Invariants, DetectResidualRegressions)
{
    RandomScenario sc = randomScenario(43);
    sc.solver.tolerance = 1e-10;
    const auto stk = stack::buildStack(sc.spec);
    const auto power = buildPowerMap(stk, sc);
    const GridModel model(stk, sc.solver);
    TemperatureField field = model.solveSteady(power);
    // A tiny smooth perturbation: energy balance stays close, but the
    // residual check (tolerance 1e-10 x safety 10) must trip.
    for (std::size_t i = 0; i < field.numNodes(); ++i)
        field.nodes()[i] += 1e-4 * std::sin(static_cast<double>(i));
    const InvariantReport rep = checkSolution(model, power, field);
    EXPECT_FALSE(rep.pass);
    EXPECT_GT(rep.achievedResidual, 1e-9);
}

TEST(Invariants, MirrorSymmetryHoldsOnSlabStacks)
{
    const auto stk = buildSlabStack(paperishSlab(), 10, 9);
    SolverOptions opts;
    opts.tolerance = 1e-11;
    const GridModel model(stk, opts);
    thermal::PowerMap power(stk);
    // Deliberately off-centre power: only the physics makes the
    // mirrored answer match.
    power.deposit(0, geometry::Rect{0.5e-3, 2e-3, 1.5e-3, 3e-3}, 9.0);
    power.deposit(3, geometry::Rect{5e-3, 1e-3, 2e-3, 1e-3}, 2.0);
    std::string msg;
    EXPECT_TRUE(checkMirrorSymmetry(model, power, 1e-6, &msg)) << msg;
}

TEST(Invariants, PowerMonotonicityOnRandomScenario)
{
    RandomScenario sc = randomScenario(44);
    sc.solver.tolerance = 1e-10;
    const auto stk = stack::buildStack(sc.spec);
    const GridModel model(stk, sc.solver);
    const auto base = buildPowerMap(stk, sc);
    thermal::PowerMap extra(stk);
    extra.deposit(stk.procMetal, geometry::Rect{2e-3, 5e-3, 2e-3, 2e-3},
                  3.0);
    std::string msg;
    EXPECT_TRUE(checkPowerMonotonicity(model, base, extra, 1e-6, &msg))
        << msg;
}

TEST(Invariants, SelfCheckFlagRoundTrips)
{
    EXPECT_FALSE(selfCheckEnabled());
    setSelfCheckEnabled(true);
    EXPECT_TRUE(selfCheckEnabled());
    setSelfCheckEnabled(false);
    EXPECT_FALSE(selfCheckEnabled());
}

// ---------------------------------------------------------------------
// Scenario generator
// ---------------------------------------------------------------------

TEST(Scenario, SameSeedReproducesExactly)
{
    const RandomScenario a = randomScenario(123);
    const RandomScenario b = randomScenario(123);
    EXPECT_EQ(a.spec.scheme, b.spec.scheme);
    EXPECT_EQ(a.spec.numDramDies, b.spec.numDramDies);
    EXPECT_EQ(a.spec.gridNx, b.spec.gridNx);
    EXPECT_EQ(a.spec.gridNy, b.spec.gridNy);
    EXPECT_DOUBLE_EQ(a.spec.dieThickness, b.spec.dieThickness);
    EXPECT_EQ(a.spec.customTtsvSites.size(),
              b.spec.customTtsvSites.size());
    ASSERT_EQ(a.deposits.size(), b.deposits.size());
    for (std::size_t i = 0; i < a.deposits.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.deposits[i].watts, b.deposits[i].watts);
        EXPECT_DOUBLE_EQ(a.deposits[i].rect.x, b.deposits[i].rect.x);
    }
    EXPECT_DOUBLE_EQ(a.totalWatts(), b.totalWatts());
}

TEST(Scenario, SeedsCoverTheSpace)
{
    // Over a modest seed range the generator must exercise multiple
    // schemes, die counts and grid sizes, and produce custom TTSV
    // layouts sometimes.
    std::set<stack::Scheme> schemes;
    std::set<int> dies;
    std::set<std::size_t> grids;
    int custom = 0;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        const RandomScenario sc = randomScenario(seed);
        schemes.insert(sc.spec.scheme);
        dies.insert(sc.spec.numDramDies);
        grids.insert(sc.spec.gridNx);
        custom += sc.spec.customTtsvSites.empty() ? 0 : 1;
        EXPECT_GE(sc.spec.gridNx, 6u);
        EXPECT_LE(sc.spec.gridNx, 12u);
        EXPECT_GE(sc.deposits.size(), 1u);
        EXPECT_GT(sc.totalWatts(), 0.0);
    }
    EXPECT_GE(schemes.size(), 4u);
    EXPECT_EQ(dies.size(), 3u);
    EXPECT_GE(grids.size(), 5u);
    EXPECT_GT(custom, 2);
    EXPECT_LT(custom, 30);
}

TEST(Scenario, BuildsSolvableStacks)
{
    // Every scenario in the differential range must build and solve.
    for (std::uint64_t seed = 50; seed < 54; ++seed) {
        const RandomScenario sc = randomScenario(seed);
        const auto stk = stack::buildStack(sc.spec);
        const auto power = buildPowerMap(stk, sc);
        EXPECT_NEAR(power.totalPower(), sc.totalWatts(),
                    1e-9 * sc.totalWatts())
            << "seed " << seed;
    }
}

// ---------------------------------------------------------------------
// SolveStats reporting
// ---------------------------------------------------------------------

TEST(SolveStats, LinePreconditionerBeatsJacobiAndBothReport)
{
    RandomScenario sc = randomScenario(60);
    sc.solver.tolerance = 1e-9;
    const auto stk = stack::buildStack(sc.spec);
    const auto power = buildPowerMap(stk, sc);

    SolverOptions jac = sc.solver;
    jac.preconditioner = Preconditioner::Jacobi; // not the MG default
    SolverOptions line = sc.solver;
    line.preconditioner = Preconditioner::VerticalLine;
    SolveStats js, ls;
    GridModel(stk, jac).solveSteady(power, &js);
    GridModel(stk, line).solveSteady(power, &ls);
    expectConverged(js, jac, "jacobi");
    expectConverged(ls, line, "line");
    // The stack is strongly vertically coupled; the tridiagonal
    // preconditioner must cut the iteration count substantially.
    EXPECT_LT(ls.iterations, js.iterations / 2)
        << "jacobi " << js.iterations << " vs line " << ls.iterations;
}

} // namespace
} // namespace xylem::verify
